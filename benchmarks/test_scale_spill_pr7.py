"""Out-of-core scale benchmark — the memory-budgeted spill tier (PR 7).

Two workloads run at **10x** the scale of the earlier regression
benches (PageRank on a 16,000-vertex follower graph vs 1,600 in the
PR 5 wall-clock bench; TPC-H Q1 at sf=1.0 vs sf=0.1 in the PR 4
shuffle bench), each under an unlimited driver budget and under a
fixed 256 KiB one:

* **Spill-on vs spill-off bit-identity.**  Results (exact ``repr`` in
  collection order) and ``simulated_seconds`` must not notice the
  budget, in serial and process-pool modes alike — spilling is a host
  mechanism, invisible to the simulated cluster.
* **The budget actually bites.**  The budgeted PageRank run must
  evict real partitions through real temp files and reload them; the
  numbers are printed and exported to ``BENCH_pr7.json`` in CI.
* **File-backed shuffle relief.**  In processes mode the budget also
  enables the file-backed shuffle: large task payloads cross the
  process boundary as spill-file refs, so pickled IPC traffic must
  drop by at least 10x against the inline-shipping run while spill
  file traffic absorbs the difference.
"""

import time

from conftest import run_once

from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import bench_cost_model, make_engine
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1

#: the fixed driver budget (bytes) every spill-on run executes under
BUDGET = 256 * 1024

#: 10x the PR 5 wall-clock bench's 1,600-vertex graph
NUM_VERTICES = 16_000

#: 10x the PR 4 shuffle bench's sf=0.1
TPCH_SF = 1.0

MODES = ("serial", "processes")


def _engine(dfs, mode, budget):
    engine = make_engine(
        "spark", dfs, num_workers=8, cost=bench_cost_model()
    )
    engine.configure_execution(mode, max_parallel_tasks=4)
    engine.configure_memory(budget)
    return engine


def _spill_stats(metrics) -> dict:
    return {
        "spilled": metrics.partitions_spilled,
        "reloaded": metrics.partitions_reloaded,
        "spill_w": metrics.spill_bytes_written,
        "spill_r": metrics.spill_bytes_read,
        "ipc": metrics.ipc_bytes_shipped,
        "evictions": metrics.budget_evictions,
    }


def _run_workload(run, dfs) -> dict:
    """Run one workload over (mode, budget); collect the comparison."""
    stats: dict = {}
    outcomes = {}
    for mode in MODES:
        for budget in (0, BUDGET):
            engine = _engine(dfs, mode, budget)
            started = time.perf_counter()
            records = run(engine)
            key = f"{mode}_b{budget}"
            stats[f"{key}_seconds"] = time.perf_counter() - started
            stats[key] = _spill_stats(engine.metrics)
            outcomes[(mode, budget)] = (
                records,
                engine.metrics.simulated_seconds,
            )
    base_records, base_sim = outcomes[("serial", 0)]
    stats["identical"] = all(
        records == base_records and sim == base_sim
        for records, sim in outcomes.values()
    )
    stats["simulated"] = base_sim
    return stats


def _run_pagerank() -> dict:
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(
        dfs, num_vertices=NUM_VERTICES
    )
    n = len(dfs.get(graph_path).records)

    def run(engine):
        ranks = pagerank.run(
            engine,
            graph_path=graph_path,
            num_pages=n,
            max_iterations=4,
        )
        return [repr(r) for r in ranks.fetch()]

    stats = _run_workload(run, dfs)
    stats["num_vertices"] = NUM_VERTICES
    return stats


def _run_q1() -> dict:
    dfs = SimulatedDFS()
    _, lineitem_path = stage_tpch(dfs, sf=TPCH_SF)

    def run(engine):
        out = tpch_q1.run(
            engine,
            lineitem_path=lineitem_path,
            ship_date_max="1998-09-02",
        )
        return [repr(r) for r in out.fetch()]

    stats = _run_workload(run, dfs)
    stats["sf"] = TPCH_SF
    return stats


def _print_rows(name: str, stats: dict) -> None:
    print()
    for mode in MODES:
        for budget in (0, BUDGET):
            key = f"{mode}_b{budget}"
            s = stats[key]
            print(
                f"{name:9s} {mode:9s} budget={budget or 'inf':>9} "
                f"wall={stats[f'{key}_seconds']:6.2f}s "
                f"spilled={s['spilled']:3d} "
                f"spill_w={s['spill_w']:>10,} "
                f"spill_r={s['spill_r']:>10,} "
                f"ipc={s['ipc']:>11,}"
            )


def test_pagerank_out_of_core_at_10x(benchmark):
    stats = run_once(benchmark, _run_pagerank)
    _print_rows("pagerank", stats)
    assert stats["identical"], "the budget changed an observable"
    # The fixed budget must have forced real out-of-core execution.
    for mode in MODES:
        budgeted = stats[f"{mode}_b{BUDGET}"]
        assert budgeted["spilled"] > 0, f"{mode}: budget never bit"
        assert budgeted["spill_w"] > 0
        assert budgeted["reloaded"] > 0
    # Unlimited runs never touch the spill tier.
    for mode in MODES:
        assert stats[f"{mode}_b0"]["spilled"] == 0
    # File-backed shuffle: the budgeted process-pool run ships refs,
    # not partitions — pickled IPC must collapse by at least 10x.
    inline = stats["processes_b0"]["ipc"]
    filed = stats[f"processes_b{BUDGET}"]["ipc"]
    assert filed * 10 < inline, (inline, filed)
    assert stats[f"processes_b{BUDGET}"]["spill_r"] > 0


def test_tpch_q1_out_of_core_at_10x(benchmark):
    stats = run_once(benchmark, _run_q1)
    _print_rows("tpch_q1", stats)
    assert stats["identical"], "the budget changed an observable"
    # Q1 is a single scan-aggregate job: nothing stays resident long
    # enough to evict, so the budget must be *harmless* here — and the
    # file-backed shuffle must still relieve the process-pool IPC.
    inline = stats["processes_b0"]["ipc"]
    filed = stats[f"processes_b{BUDGET}"]["ipc"]
    assert filed * 10 < inline, (inline, filed)
    assert stats[f"processes_b{BUDGET}"]["spill_r"] > 0

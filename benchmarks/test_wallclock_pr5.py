"""Wall-clock ablation — the host-parallel execution backend (PR 5).

The simulated clock (``Metrics.simulated_seconds``) models a cluster;
this benchmark measures the *host* clock.  Two workloads run under
``execution_mode="serial"`` and ``execution_mode="processes"``:

* a chain-heavy arithmetic kernel loop (maximally process-friendly:
  inlined fused kernels over float partitions, tiny IPC payloads), and
* end-to-end PageRank through the full compiled pipeline (joins,
  shuffles, aggregations — the realistic mix of parallel worker stages
  and serial driver work).

Both must be **bit-identical** across modes with zero serial
fallbacks, on any machine.  The speedup assertions are gated on the
host actually having cores to parallelize over (at least 4 CPUs
*available to this process* — affinity-aware via
``os.process_cpu_count`` where Python provides it): on a 1–2 core
runner the process pool cannot beat the serial loop, so the identity
assertions still run and the test then **skips visibly** instead of
vacuously passing.  Results are exported to ``BENCH_pr5.json`` in CI.
"""

import os
import time

import pytest
from conftest import run_once

from repro.comprehension.exprs import BinOp, Compare, Const, Ref
from repro.engines.dfs import SimulatedDFS
from repro.engines.executor import JobExecutor
from repro.experiments.runner import bench_cost_model, make_engine
from repro.lowering.chaining import chain_operators
from repro.lowering.combinators import CBagRef, CFilter, CMap, ScalarFn
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank

#: CPUs usable by *this process* (cgroup/affinity-aware on 3.13+;
#: ``os.cpu_count`` is the best available answer before that)
HOST_CPUS = getattr(os, "process_cpu_count", os.cpu_count)() or 1
#: concurrent task slots given to the processes mode
WIDTH = min(8, HOST_CPUS)
#: whether the wall-clock speedup assertions are enforced on this host
ENFORCE_SPEEDUP = HOST_CPUS >= 4


def _skip_unless_enforced() -> None:
    """Skip (visibly, not vacuously pass) on hosts too narrow to gate.

    Called *after* the bit-identity assertions so correctness is always
    checked; only the wall-clock speedup threshold needs real cores.
    """
    if not ENFORCE_SPEEDUP:
        pytest.skip(
            f"host exposes {HOST_CPUS} usable CPUs (< 4): wall-clock "
            "speedup recorded but not enforced"
        )


def _engine(dfs, mode, num_workers=8):
    engine = make_engine(
        "spark", dfs, num_workers=num_workers, cost=bench_cost_model()
    )
    engine.configure_execution(mode, max_parallel_tasks=WIDTH)
    return engine


# ---------------------------------------------------------------------------
# The arithmetic kernel loop: fused chains over float partitions
# ---------------------------------------------------------------------------


def _arith_plan(bias: float):
    """A 12-step map/filter chain of pure float arithmetic."""
    p = CBagRef(name="xs")
    for i in range(4):
        p = CMap(
            fn=ScalarFn(
                ("x",),
                BinOp(
                    "+",
                    BinOp("*", Ref("x"), Const(1.00003 + i * 1e-5)),
                    Const(bias),
                ),
            ),
            input=p,
        )
        p = CFilter(
            predicate=ScalarFn(
                ("x",), Compare("<", Ref("x"), Const(1e12))
            ),
            input=p,
        )
        p = CMap(
            fn=ScalarFn(
                ("x",),
                BinOp("-", BinOp("*", Ref("x"), Ref("x")), Ref("x")),
            ),
            input=p,
        )
    return p


def _kernel_loop(engine, bag, reps: int):
    """Run the chain for several biases; return (seconds, outputs)."""
    job = engine._new_job()
    outputs = []
    started = time.perf_counter()
    for rep in range(reps):
        for bias in (0.25, 0.5, 0.75):
            plan = chain_operators(_arith_plan(bias))
            result = JobExecutor(engine, {"xs": bag}, job)._exec(plan)
            outputs.append(
                [x for part in result.partitions for x in part]
            )
    return time.perf_counter() - started, outputs


def _run_kernel_modes():
    records = [float(i % 977) / 977.0 for i in range(160_000)]
    stats = {"host_cpus": HOST_CPUS, "width": WIDTH}
    outputs = {}
    for mode in ("serial", "processes"):
        engine = _engine(SimulatedDFS(), mode)
        bag = JobExecutor(
            engine, {}, engine._new_job()
        ).parallelize_local(records)
        _kernel_loop(engine, bag, reps=1)  # warm pool + kernel memos
        engine.reset_metrics()
        seconds, out = _kernel_loop(engine, bag, reps=2)
        outputs[mode] = out
        stats[f"{mode}_seconds"] = seconds
        stats[f"{mode}_fallbacks"] = engine.metrics.serial_fallbacks
        stats[f"{mode}_simulated"] = engine.metrics.simulated_seconds
    stats["identical"] = outputs["serial"] == outputs["processes"]
    return stats


def test_kernel_loop_processes_wall_clock(benchmark):
    stats = run_once(benchmark, _run_kernel_modes)
    speedup = stats["serial_seconds"] / stats["processes_seconds"]
    print()
    print(
        f"kernel loop   serial={stats['serial_seconds']:.3f}s "
        f"processes={stats['processes_seconds']:.3f}s "
        f"speedup={speedup:.2f}x cpus={HOST_CPUS} width={WIDTH}"
    )
    assert stats["identical"], "processes mode changed kernel results"
    assert stats["processes_fallbacks"] == 0
    assert stats["serial_simulated"] == stats["processes_simulated"]
    _skip_unless_enforced()
    assert speedup >= 1.5


# ---------------------------------------------------------------------------
# End-to-end PageRank through the compiled pipeline
# ---------------------------------------------------------------------------


def _run_pagerank_modes():
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=1600)
    n = len(dfs.get(graph_path).records)
    stats = {"host_cpus": HOST_CPUS, "width": WIDTH}
    outputs = {}
    for mode in ("serial", "processes"):
        engine = _engine(dfs, mode, num_workers=WIDTH)
        # Warm run: spawn the pool, compile + memoize every kernel.
        pagerank.run(
            engine, graph_path=graph_path, num_pages=n, max_iterations=1
        )
        engine.reset_metrics()
        started = time.perf_counter()
        ranks = pagerank.run(
            engine, graph_path=graph_path, num_pages=n, max_iterations=4
        )
        stats[f"{mode}_seconds"] = time.perf_counter() - started
        outputs[mode] = [repr(r) for r in ranks.fetch()]
        stats[f"{mode}_fallbacks"] = engine.metrics.serial_fallbacks
        stats[f"{mode}_simulated"] = engine.metrics.simulated_seconds
        stats[f"{mode}_wall_metric"] = engine.metrics.wall_clock_seconds
    stats["identical"] = outputs["serial"] == outputs["processes"]
    return stats


def test_pagerank_processes_wall_clock(benchmark):
    stats = run_once(benchmark, _run_pagerank_modes)
    speedup = stats["serial_seconds"] / stats["processes_seconds"]
    print()
    print(
        f"pagerank      serial={stats['serial_seconds']:.3f}s "
        f"processes={stats['processes_seconds']:.3f}s "
        f"speedup={speedup:.2f}x cpus={HOST_CPUS} width={WIDTH}"
    )
    assert stats["identical"], "processes mode changed PageRank ranks"
    assert stats["processes_fallbacks"] == 0
    # The simulated clock must not notice the execution mode ...
    assert stats["serial_simulated"] == stats["processes_simulated"]
    # ... while the measured wall-clock metric tracks the host run.
    assert stats["processes_wall_metric"] > 0.0
    _skip_unless_enforced()
    assert speedup >= 2.0

"""Benchmark F4 — regenerate Figure 4 (workflow optimization speedups).

Shape assertions (the paper's qualitative claims):

* every optimized configuration beats the unoptimized baseline;
* partition pulling *alone* adds nothing over unnesting;
* adding caching gives a substantial further speedup;
* partitioning + caching together beat caching alone (the shuffle is
  paid once, outside the loop);
* the Flink-like engine's speedups dwarf the Spark-like engine's
  (costly broadcast handling in its baseline).
"""

import pytest
from conftest import run_once

from repro.experiments.figure4 import run_figure4


def test_figure4_speedups(benchmark):
    result = run_once(benchmark, run_figure4)
    print()
    print(result.render())

    spark = result.speedups("spark")
    flink = result.speedups("flink")

    for engine_speedups in (spark, flink):
        # Every optimized configuration beats the baseline.
        assert all(s > 1.0 for s in engine_speedups.values())
        # Partitioning alone adds nothing over unnesting (±5%).
        assert engine_speedups[
            "unnesting+partitioning"
        ] == pytest.approx(engine_speedups["unnesting"], rel=0.05)
        # Partitioning + caching beats caching alone.
        assert (
            engine_speedups["unnesting+partitioning+caching"]
            > engine_speedups["unnesting+caching"]
        )

    # Caching's additional gain over unnesting alone: large on the
    # Spark-like engine (in-memory cache; paper 3.86/1.50 = 2.6x),
    # present but smaller on the Flink-like engine, whose cache round-
    # trips through the DFS.
    assert spark["unnesting+caching"] > 1.8 * spark["unnesting"]
    assert flink["unnesting+caching"] > 1.08 * flink["unnesting"]

    # The Flink-like engine gains far more from unnesting: its baseline
    # suffers from broadcast handling (paper: 6.56x vs 1.50x).
    assert flink["unnesting"] > 3 * spark["unnesting"]
    # Ballpark magnitudes: Spark unnesting within [1.1, 2.5]x (paper
    # 1.5x), Flink within [4, 12]x (paper 6.56x).
    assert 1.1 <= spark["unnesting"] <= 2.5
    assert 4.0 <= flink["unnesting"] <= 12.0

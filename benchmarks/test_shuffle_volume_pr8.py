"""Shuffle-volume regression bench — UDF-aware reordering (PR 8).

Guards the tentpole win with a hard floor, printed as paper-style rows
and exported to ``BENCH_pr8.json`` in CI: on the UDF-styled TPC-H Q4
(all three selections phrased as black-box lambdas over the join pair,
which the comprehension calculus cannot push), read/write-set
inference must push every filter below the orders × lineitems join and
cut ``shuffle_bytes`` by at least 1.5x against the reordering-off
baseline — at repr-identical results.

Both configurations run under a small broadcast threshold so the join
is realized by repartitioning — the regime where pushdown removes
shuffled bytes; with a huge threshold both configurations would
broadcast the build side and the comparison would measure nothing.
"""

from conftest import run_once

from repro.engines.dfs import SimulatedDFS
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.tpch import stage_tpch, tpch_q4_udf

REORDER_ON = EmmaConfig(udf_reordering="auto")
REORDER_OFF = EmmaConfig(udf_reordering="off")

#: below both the raw and the filtered join build side — forces both
#: configurations to repartition instead of broadcasting
THRESHOLD = 512

SCALE_FACTOR = 0.1

Q4_PARAMS = dict(date_min="1994-01-01", date_max="1994-07-01")


def _metrics_row(name, m, report):
    row = {
        "workload": name,
        "bytes_shuffled": m.shuffle_bytes,
        "simulated_seconds": round(m.simulated_seconds, 6),
        "reorders_applied": report.reorders_applied,
        "reorders_rejected": report.reorders_rejected,
        "udfs_analyzed": report.udfs_analyzed,
    }
    print(
        f"{name:>18}: {m.shuffle_bytes:>10} bytes shuffled, "
        f"{m.simulated_seconds:8.3f} s, "
        f"reorders={report.reorders_applied}"
        f"(-{report.reorders_rejected} rejected) "
        f"udfs_analyzed={report.udfs_analyzed}"
    )
    return row


def _run_q4_udf(dfs, paths, config):
    engine = SparkLikeEngine(dfs=dfs)
    engine.broadcast_join_threshold = THRESHOLD
    orders_path, lineitem_path = paths
    result = tpch_q4_udf.run(
        engine,
        config=config,
        orders_path=orders_path,
        lineitem_path=lineitem_path,
        **Q4_PARAMS,
    )
    records = [repr(r) for r in result.fetch()]
    return engine.metrics, tpch_q4_udf.report(config), records


class TestQ4UdfPushdown:
    def test_reordering_cuts_shuffle_volume(self, benchmark):
        def experiment():
            dfs = SimulatedDFS()
            paths = stage_tpch(dfs, sf=SCALE_FACTOR)
            off = _run_q4_udf(dfs, paths, REORDER_OFF)
            on = _run_q4_udf(dfs, paths, REORDER_ON)
            return off, on

        off, on = run_once(benchmark, experiment)
        off_metrics, off_report, off_records = off
        on_metrics, on_report, on_records = on
        print()
        _metrics_row("q4-udf (off)", off_metrics, off_report)
        row = _metrics_row("q4-udf (on)", on_metrics, on_report)
        ratio = off_metrics.shuffle_bytes / max(
            on_metrics.shuffle_bytes, 1
        )
        print(f"    bytes_shuffled reduction: {ratio:.2f}x")
        benchmark.extra_info.update(row)
        benchmark.extra_info["baseline_bytes_shuffled"] = (
            off_metrics.shuffle_bytes
        )
        benchmark.extra_info["baseline_simulated_seconds"] = round(
            off_metrics.simulated_seconds, 6
        )
        benchmark.extra_info["reduction_factor"] = round(ratio, 3)

        # Reordering must never change the answer...
        assert on_records == off_records
        # ...the baseline must be what the gate claims: the calculus
        # alone pushes nothing, the pass pushes all three filters...
        assert off_report.reorders_applied == 0
        assert "pushed-below-join" not in tpch_q4_udf.explain(
            REORDER_OFF
        )
        assert on_report.reorders_applied >= 3
        assert "pushed-below-join" in tpch_q4_udf.explain(REORDER_ON)
        # ...and the pushdown must pay: strictly fewer shuffled bytes,
        # with at least a 1.5x reduction (acceptance floor).
        assert on_metrics.shuffle_bytes < off_metrics.shuffle_bytes
        assert (
            on_metrics.shuffle_bytes * 3
            <= off_metrics.shuffle_bytes * 2
        )

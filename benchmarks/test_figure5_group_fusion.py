"""Benchmark F5 — regenerate Figure 5 (fusion and scalability).

Shape assertions, per the paper's Appendix B.1 analysis:

* with fold-group fusion both engines handle *all* distributions and
  fusion is never slower than no-fusion;
* under the Pareto distribution (~35% of tuples on one key) the
  Spark-like engine *fails at every DOP* without fusion (the hot
  reducer's group outgrows worker memory) while the Flink-like engine
  finishes, degrading with DOP (the hot worker receives a constant
  *fraction* of a growing total);
* with fusion, the Flink-like engine stays near-flat under weak scaling
  while the Spark-like engine's runtime grows with the DOP
  (centralized per-task scheduling — the paper's "superlinear"
  observation).
"""

from conftest import run_once

from repro.experiments.figure5 import run_figure5
from repro.experiments.runner import DNF


def test_figure5_sweep(benchmark):
    result = run_once(benchmark, run_figure5)
    print()
    print(result.render())
    dops = result.scale.dops

    for distribution in ("uniform", "gaussian", "pareto"):
        for engine in ("spark", "flink"):
            fused = dict(result.series(engine, distribution, True))
            unfused = dict(
                result.series(engine, distribution, False)
            )
            # Fusion always finishes ...
            assert all(t is not DNF for t in fused.values())
            # ... and is never slower than no-fusion where both finish.
            for dop in dops:
                if unfused[dop] is not DNF:
                    assert fused[dop] <= unfused[dop] * 1.05

    # Pareto: Spark-like fails at every DOP without fusion; the
    # Flink-like engine survives but degrades with DOP.
    spark_pareto = dict(result.series("spark", "pareto", False))
    assert all(t is DNF for t in spark_pareto.values())
    flink_pareto = dict(result.series("flink", "pareto", False))
    assert all(t is not DNF for t in flink_pareto.values())
    assert flink_pareto[dops[-1]] > 3 * flink_pareto[dops[0]]

    # Weak-scaling behaviour with fusion: Flink-like stays much closer
    # to flat than the Spark-like engine (paper: linear vs superlinear).
    spark_gf = dict(result.series("spark", "uniform", True))
    flink_gf = dict(result.series("flink", "uniform", True))
    spark_growth = spark_gf[dops[-1]] / spark_gf[dops[0]]
    flink_growth = flink_gf[dops[-1]] / flink_gf[dops[0]]
    assert spark_growth > 1.3 * flink_growth

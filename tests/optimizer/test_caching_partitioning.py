"""Tests for the caching and partition-pulling heuristics (§4.4)."""

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    Compare,
    Const,
    FoldCall,
    GroupByCall,
    Lambda,
    MapCall,
    Ref,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    GenMode,
    Generator,
    Guard,
)
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SCache,
    SReturn,
    SWhile,
)
from repro.lowering.combinators import ScalarFn
from repro.optimizer.caching import (
    insert_cache_statements,
    plan_caching,
)
from repro.optimizer.partition_pulling import (
    choose_partition_keys,
    collect_partition_uses,
)


def bag_assign(name, value):
    return SAssign(name=name, value=value, bag_typed=True)


def prog(*stmts, params=(), bag_params=()):
    return DriverProgram(
        name="p",
        params=params,
        body=stmts,
        bag_params=frozenset(bag_params),
    )


def mapped(src):
    return MapCall(src, Lambda(("x",), Ref("x")))


class TestCachingHeuristic:
    def test_loop_use_triggers_cache(self):
        program = prog(
            bag_assign("ys", mapped(Ref("src"))),
            SWhile(
                cond=Const(True),
                body=(
                    SAssign(
                        name="n",
                        value=FoldCall(Ref("ys"), AlgebraSpec("count")),
                    ),
                ),
            ),
        )
        decisions = plan_caching(program)
        assert [(d.name, d.reason) for d in decisions] == [
            ("ys", "loop")
        ]

    def test_multi_use_triggers_cache(self):
        program = prog(
            bag_assign("ys", mapped(Ref("src"))),
            SAssign(
                name="a", value=FoldCall(Ref("ys"), AlgebraSpec("count"))
            ),
            SAssign(
                name="b", value=FoldCall(Ref("ys"), AlgebraSpec("sum"))
            ),
        )
        decisions = plan_caching(program)
        assert [(d.name, d.reason) for d in decisions] == [
            ("ys", "multi-use")
        ]

    def test_single_use_not_cached(self):
        program = prog(
            bag_assign("ys", mapped(Ref("src"))),
            SReturn(value=Ref("ys")),
        )
        assert plan_caching(program) == []

    def test_reassigned_names_not_cached(self):
        # ctrds-style: rebound inside the loop, so not loop-invariant.
        program = prog(
            bag_assign("ys", mapped(Ref("src"))),
            SWhile(
                cond=Const(True),
                body=(
                    bag_assign("ys", mapped(Ref("ys"))),
                    SAssign(
                        name="n",
                        value=FoldCall(Ref("ys"), AlgebraSpec("count")),
                    ),
                ),
            ),
        )
        assert plan_caching(program) == []

    def test_bag_parameter_used_in_loop_cached(self):
        program = prog(
            SWhile(
                cond=Const(True),
                body=(
                    SAssign(
                        name="n",
                        value=FoldCall(
                            Ref("points"), AlgebraSpec("count")
                        ),
                    ),
                ),
            ),
            params=("points",),
            bag_params=("points",),
        )
        decisions = plan_caching(program)
        assert [d.name for d in decisions] == ["points"]

    def test_insertion_points(self):
        program = prog(
            bag_assign("ys", mapped(Ref("points"))),
            SWhile(
                cond=Const(True),
                body=(
                    SAssign(
                        name="n",
                        value=FoldCall(
                            Ref("points"), AlgebraSpec("count")
                        ),
                    ),
                    SAssign(
                        name="m",
                        value=FoldCall(Ref("ys"), AlgebraSpec("sum")),
                    ),
                ),
            ),
            params=("points",),
            bag_params=("points",),
        )
        decisions = plan_caching(program)
        out = insert_cache_statements(program, decisions)
        kinds = [type(s).__name__ for s in out.body]
        # Parameter cache first, then ys's cache right after its def.
        assert kinds == ["SCache", "SAssign", "SCache", "SWhile"]
        assert out.body[0].name == "points"
        assert out.body[2].name == "ys"


def _join_comp(exists=False):
    mode = GenMode.EXISTS if exists else GenMode.NORMAL
    return Comprehension(
        head=Ref("e"),
        qualifiers=(
            Generator("e", Ref("emails")),
            Generator("b", Ref("blacklist"), mode),
            Guard(
                Compare(
                    "==",
                    Attr(Ref("b"), "ip"),
                    Attr(Ref("e"), "ip"),
                )
            ),
        ),
        kind=BAG,
    )


class TestPartitionPulling:
    def test_join_keys_collected_for_both_sides(self):
        uses = collect_partition_uses(_join_comp(), in_loop=True)
        names = {(u.name, u.partner) for u in uses}
        assert ("emails", "blacklist") in names
        assert ("blacklist", "emails") in names

    def test_loop_weighting(self):
        in_loop = collect_partition_uses(_join_comp(), in_loop=True)
        flat = collect_partition_uses(_join_comp(), in_loop=False)
        assert in_loop[0].weight > flat[0].weight

    def test_exists_generators_participate(self):
        uses = collect_partition_uses(
            _join_comp(exists=True), in_loop=False
        )
        assert any(u.name == "blacklist" for u in uses)

    def test_group_by_key_collected(self):
        expr = GroupByCall(
            Ref("xs"), Lambda(("x",), Attr(Ref("x"), "k"))
        )
        uses = collect_partition_uses(expr, in_loop=False)
        assert uses and uses[0].kind == "group"

    def test_choose_requires_cached_join_partner(self):
        uses = collect_partition_uses(_join_comp(), in_loop=True)
        both = choose_partition_keys(
            uses, {"emails", "blacklist"}
        )
        assert set(both) == {"emails", "blacklist"}
        only_left = choose_partition_keys(uses, {"emails"})
        assert only_left == {}

    def test_group_uses_need_no_partner(self):
        expr = GroupByCall(
            Ref("xs"), Lambda(("x",), Attr(Ref("x"), "k"))
        )
        uses = collect_partition_uses(expr, in_loop=False)
        chosen = choose_partition_keys(uses, {"xs"})
        assert "xs" in chosen
        assert isinstance(chosen["xs"], ScalarFn)

    def test_weighted_majority_wins(self):
        comp_a = _join_comp()
        uses = collect_partition_uses(comp_a, in_loop=True)
        # Add a competing flat-weight group key on a different field.
        other = GroupByCall(
            Ref("emails"), Lambda(("x",), Attr(Ref("x"), "sender"))
        )
        uses += collect_partition_uses(other, in_loop=False)
        chosen = choose_partition_keys(
            uses, {"emails", "blacklist"}
        )
        assert "ip" in chosen["emails"].describe()

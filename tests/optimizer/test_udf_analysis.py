"""Unit tests for field-level read/write-set inference over UDF bodies.

Covers the tricky cases the reordering pass depends on: nested
attribute access, tuple re-packing (projection simplification),
closures over driver variables, and the conservative TOP fallback on
``getattr``/``**`` expansion.
"""

import pytest

from repro.comprehension.exprs import (
    Attr,
    BinOp,
    Call,
    Compare,
    Const,
    Index,
    Lambda,
    Ref,
    TupleExpr,
)
from repro.lowering.combinators import ScalarFn
from repro.optimizer.udf_analysis import (
    FieldPath,
    analyze_emit_set,
    analyze_read_set,
    default_udf_reordering,
    render_paths,
    simplify_projections,
)


def path(*steps):
    return FieldPath(tuple(steps))


def attr(name):
    return ("attr", name)


def idx(i):
    return ("index", i)


class TestReadSets:
    def test_nested_attr_access(self):
        # \p -> p.a.b < p.c
        fn = ScalarFn(
            ("p",),
            Compare(
                "<",
                Attr(Attr(Ref("p"), "a"), "b"),
                Attr(Ref("p"), "c"),
            ),
        )
        rs = analyze_read_set(fn)
        assert not rs.top
        assert rs.reads("p") == {
            path(attr("a"), attr("b")),
            path(attr("c")),
        }

    def test_index_chain_and_pair_side(self):
        # \p -> p[1].commit_date < p[1].receipt_date
        fn = ScalarFn(
            ("p",),
            Compare(
                "<",
                Attr(Index(Ref("p"), Const(1)), "commit_date"),
                Attr(Index(Ref("p"), Const(1)), "receipt_date"),
            ),
        )
        rs = analyze_read_set(fn)
        assert rs.pair_side("p") == 1
        assert rs.reads("p") == {
            path(idx(1), attr("commit_date")),
            path(idx(1), attr("receipt_date")),
        }

    def test_both_sides_is_not_confined(self):
        # \p -> p[0].x == p[1].y
        fn = ScalarFn(
            ("p",),
            Compare(
                "==",
                Attr(Index(Ref("p"), Const(0)), "x"),
                Attr(Index(Ref("p"), Const(1)), "y"),
            ),
        )
        assert analyze_read_set(fn).pair_side("p") is None

    def test_tuple_repacking_simplifies_before_analysis(self):
        # The unnesting residue: \j -> (j[0], j[1])[1].x — syntactically
        # mentions both pair components, semantically reads side 1 only.
        repacked = TupleExpr(
            (Index(Ref("j"), Const(0)), Index(Ref("j"), Const(1)))
        )
        fn = ScalarFn(
            ("j",),
            Compare(
                "<", Attr(Index(repacked, Const(1)), "x"), Const(3)
            ),
        )
        rs = analyze_read_set(fn)
        assert rs.pair_side("j") == 1
        assert rs.reads("j") == {path(idx(1), attr("x"))}

    def test_whole_record_read(self):
        fn = ScalarFn(("p",), Compare("==", Ref("p"), Const(0)))
        rs = analyze_read_set(fn)
        assert rs.reads("p") == {path()}
        assert rs.pair_side("p") is None

    def test_closure_free_names_are_collected(self):
        # \o -> o.order_date >= date_min — date_min is a driver
        # variable captured by the closure, not a field read.
        fn = ScalarFn(
            ("o",),
            Compare(
                ">=", Attr(Ref("o"), "order_date"), Ref("date_min")
            ),
        )
        rs = analyze_read_set(fn)
        assert rs.free == {"date_min"}
        assert rs.reads("o") == {path(attr("order_date"))}

    def test_getattr_on_param_is_top(self):
        fn = ScalarFn(
            ("p",),
            Call(Ref("getattr"), (Ref("p"), Ref("field_name"))),
        )
        rs = analyze_read_set(fn)
        assert rs.top
        assert "getattr" in rs.top_reason

    def test_getattr_on_broadcast_state_stays_precise(self):
        # getattr over non-parameter data does not defeat the analysis.
        fn = ScalarFn(
            ("p",),
            Compare(
                "==",
                Attr(Ref("p"), "k"),
                Call(Ref("getattr"), (Ref("cfg"), Const("key"))),
            ),
        )
        rs = analyze_read_set(fn)
        assert not rs.top
        assert rs.reads("p") == {path(attr("k"))}

    def test_double_star_over_param_is_top(self):
        fn = ScalarFn(
            ("p",),
            Call(Ref("f"), kwargs=(("**", Ref("p")),)),
        )
        rs = analyze_read_set(fn)
        assert rs.top
        assert "**" in rs.top_reason

    def test_double_star_over_broadcast_stays_precise(self):
        fn = ScalarFn(
            ("p",),
            Call(
                Ref("f"),
                (Attr(Ref("p"), "x"),),
                (("**", Ref("defaults")),),
            ),
        )
        rs = analyze_read_set(fn)
        assert not rs.top
        assert rs.reads("p") == {path(attr("x"))}

    def test_dynamic_index_reads_whole_prefix_subtree(self):
        # \p -> p[0].row[i] — the dynamic subscript widens to the
        # whole ``p[0].row`` subtree, which is still side-confined.
        fn = ScalarFn(
            ("p",),
            Index(
                Attr(Index(Ref("p"), Const(0)), "row"), Ref("i")
            ),
        )
        rs = analyze_read_set(fn)
        assert not rs.top
        assert rs.reads("p") == {path(idx(0), attr("row"))}
        assert rs.pair_side("p") == 0
        assert rs.free == {"i"}

    def test_inner_lambda_shadows_parameter(self):
        # \p -> f(\p -> p.inner, p.outer) — the inner lambda's p is a
        # different variable.
        fn = ScalarFn(
            ("p",),
            Call(
                Ref("f"),
                (
                    Lambda(("p",), Attr(Ref("p"), "inner")),
                    Attr(Ref("p"), "outer"),
                ),
            ),
        )
        rs = analyze_read_set(fn)
        assert rs.reads("p") == {path(attr("outer"))}

    def test_only_attr_key(self):
        fn = ScalarFn(
            ("g",),
            Compare("==", Attr(Ref("g"), "key"), Const("HIGH")),
        )
        rs = analyze_read_set(fn)
        assert rs.only_attr("g", "key")
        assert not rs.only_attr("g", "values")

    def test_bool_index_is_not_a_field_step(self):
        # p[True] must not be conflated with p[1].
        fn = ScalarFn(("p",), Index(Ref("p"), Const(True)))
        rs = analyze_read_set(fn)
        assert rs.reads("p") == {path()}

    def test_describe_renders_field_names(self):
        fn = ScalarFn(
            ("p",),
            Compare(
                "<",
                Attr(Index(Ref("p"), Const(1)), "commit_date"),
                Attr(Index(Ref("p"), Const(1)), "receipt_date"),
            ),
        )
        rs = analyze_read_set(fn)
        text = rs.describe("p")
        assert "commit_date" in text and "receipt_date" in text


class TestEmitSets:
    def test_identity_emit_resolves_everything(self):
        es = analyze_emit_set(ScalarFn.identity("x"))
        assert es.components is not None
        assert es.resolves(path())
        assert es.resolves(path(attr("anything")))

    def test_access_chain_emit(self):
        # \p -> p[0]: a downstream read of .x resolves to p[0].x
        es = analyze_emit_set(
            ScalarFn(("p",), Index(Ref("p"), Const(0)))
        )
        assert es.components is not None
        assert es.resolves(path(attr("x")))

    def test_tuple_repack_mixes_copies_and_computed(self):
        # \x -> (x.a, x.b + 1)
        es = analyze_emit_set(
            ScalarFn(
                ("x",),
                TupleExpr(
                    (
                        Attr(Ref("x"), "a"),
                        BinOp("+", Attr(Ref("x"), "b"), Const(1)),
                    )
                ),
            )
        )
        assert es.resolves(path(idx(0)))
        assert es.resolves(path(idx(0), attr("deep")))
        assert not es.resolves(path(idx(1)))
        assert not es.resolves(path())  # whole-record read overlaps [1]

    def test_constructor_call_is_opaque(self):
        es = analyze_emit_set(
            ScalarFn(
                ("x",),
                Call(Ref("Point"), kwargs=(("x", Attr(Ref("x"), "a")),)),
            )
        )
        assert es.components is None
        assert not es.resolves(path(attr("x")))

    def test_multi_parameter_udf_is_opaque(self):
        es = analyze_emit_set(ScalarFn(("a", "b"), Ref("a")))
        assert es.components is None


class TestSimplifyProjections:
    def test_collapses_constant_index_into_tuple(self):
        expr = Index(TupleExpr((Ref("a"), Ref("b"))), Const(1))
        assert simplify_projections(expr) == Ref("b")

    def test_negative_index(self):
        expr = Index(TupleExpr((Ref("a"), Ref("b"))), Const(-1))
        assert simplify_projections(expr) == Ref("b")

    def test_out_of_range_left_alone(self):
        expr = Index(TupleExpr((Ref("a"),)), Const(5))
        assert simplify_projections(expr) == expr

    def test_bool_index_left_alone(self):
        expr = Index(TupleExpr((Ref("a"), Ref("b"))), Const(True))
        assert simplify_projections(expr) == expr

    def test_nested_collapse(self):
        inner = TupleExpr((Ref("a"), Ref("b")))
        expr = Attr(
            Index(
                TupleExpr((Index(inner, Const(0)), Ref("c"))), Const(0)
            ),
            "f",
        )
        assert simplify_projections(expr) == Attr(Ref("a"), "f")


class TestHelpers:
    def test_render_paths_is_sorted_and_stripped(self):
        rendered = render_paths(
            {path(attr("b")), path(attr("a"), attr("c"))}
        )
        assert rendered == "{a.c, b}"

    def test_field_path_prefix(self):
        assert path(idx(0), attr("x")).starts_with(path(idx(0)))
        assert not path(idx(1)).starts_with(path(idx(0)))

    def test_default_mode_honours_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_UDF_REORDERING", raising=False)
        assert default_udf_reordering() == "auto"
        monkeypatch.setenv("REPRO_UDF_REORDERING", "off")
        assert default_udf_reordering() == "off"
        monkeypatch.setenv("REPRO_UDF_REORDERING", "bogus")
        with pytest.raises(ValueError):
            default_udf_reordering()

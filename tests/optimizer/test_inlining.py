"""Tests for single-use bag inlining (paper Section 4.1)."""

from repro.comprehension.exprs import (
    BinOp,
    Const,
    FoldCall,
    AlgebraSpec,
    Lambda,
    MapCall,
    Ref,
)
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SExpr,
    SReturn,
    SWhile,
)
from repro.optimizer.inlining import (
    count_free_refs,
    inline_single_use,
)


def bag_assign(name, value, line=0):
    return SAssign(name=name, value=value, bag_typed=True, line=line)


def scalar_assign(name, value, line=0):
    return SAssign(name=name, value=value, bag_typed=False, line=line)


def prog(*stmts, params=("xs",)):
    return DriverProgram(
        name="p", params=params, body=stmts, bag_params=frozenset(params)
    )


def mapped(source):
    return MapCall(source, Lambda(("x",), BinOp("+", Ref("x"), Const(1))))


class TestCountFreeRefs:
    def test_counts_multiplicity(self):
        expr = BinOp("+", Ref("a"), Ref("a"))
        assert count_free_refs(expr, "a") == 2

    def test_respects_binders(self):
        expr = MapCall(Ref("a"), Lambda(("a",), Ref("a")))
        assert count_free_refs(expr, "a") == 1  # only the source


class TestInlining:
    def test_single_use_chain_collapses(self):
        program = prog(
            bag_assign("ys", mapped(Ref("xs"))),
            bag_assign("zs", mapped(Ref("ys"))),
            SReturn(value=Ref("zs")),
        )
        out, count = inline_single_use(program)
        assert count == 2
        (ret,) = out.body
        assert isinstance(ret, SReturn)
        # zs and ys both folded into the return expression.
        assert count_free_refs(ret.value, "xs") == 1

    def test_multi_use_not_inlined(self):
        program = prog(
            bag_assign("ys", mapped(Ref("xs"))),
            scalar_assign(
                "n", FoldCall(Ref("ys"), AlgebraSpec("count"))
            ),
            scalar_assign(
                "m", FoldCall(Ref("ys"), AlgebraSpec("sum"))
            ),
        )
        out, count = inline_single_use(program)
        assert count == 0
        assert len(out.body) == 3

    def test_scalar_assignments_not_inlined(self):
        program = prog(
            scalar_assign("k", Const(5)),
            SReturn(value=Ref("k")),
        )
        _out, count = inline_single_use(program)
        assert count == 0

    def test_use_inside_loop_not_inlined(self):
        # Inlining a loop-external definition into a loop body would
        # change how often the dataflow is re-evaluated.
        program = prog(
            bag_assign("ys", mapped(Ref("xs"))),
            SWhile(
                cond=Const(True),
                body=(
                    scalar_assign(
                        "n",
                        FoldCall(Ref("ys"), AlgebraSpec("count")),
                    ),
                ),
            ),
        )
        _out, count = inline_single_use(program)
        assert count == 0

    def test_inlining_within_the_same_loop_body(self):
        loop = SWhile(
            cond=Const(True),
            body=(
                bag_assign("ys", mapped(Ref("xs"))),
                scalar_assign(
                    "n", FoldCall(Ref("ys"), AlgebraSpec("count"))
                ),
            ),
        )
        program = prog(loop)
        out, count = inline_single_use(program)
        assert count == 1
        (new_loop,) = out.body
        assert len(new_loop.body) == 1

    def test_dependency_reassignment_blocks_inlining(self):
        program = prog(
            bag_assign("ys", mapped(Ref("xs"))),
            bag_assign("xs", mapped(Ref("xs"))),  # xs rebound!
            SReturn(value=Ref("ys")),
        )
        out, count = inline_single_use(program)
        # ys depends on the *old* xs; moving it past the rebinding
        # would change its meaning.
        assert count_free_refs(out.body[-1].value, "ys") == 1

    def test_stateful_assignments_never_inlined(self):
        stmt = SAssign(
            name="s",
            value=Ref("xs"),
            bag_typed=True,
            stateful=True,
        )
        program = prog(stmt, SReturn(value=Ref("s")))
        _out, count = inline_single_use(program)
        assert count == 0

    def test_zero_use_definition_kept(self):
        # Dead definitions are not inlining's business.
        program = prog(
            bag_assign("ys", mapped(Ref("xs"))),
            SReturn(value=Ref("xs")),
        )
        out, count = inline_single_use(program)
        assert count == 0
        assert len(out.body) == 2

    def test_write_sink_use_is_inlinable(self):
        from repro.comprehension.exprs import WriteCall

        program = prog(
            bag_assign("ys", mapped(Ref("xs"))),
            SExpr(
                value=WriteCall(
                    path=Const("out"), fmt=Const(None), source=Ref("ys")
                )
            ),
        )
        out, count = inline_single_use(program)
        assert count == 1
        assert len(out.body) == 1

"""Unit tests for the UDF-aware reordering pass at combinator level.

Each rule is exercised fired, skipped, and (for the cost consult)
rejected, plus the fixpoint composition of rules.
"""

from repro.comprehension.exprs import (
    Attr,
    BinOp,
    Call,
    Compare,
    Const,
    Index,
    Ref,
    TupleExpr,
)
from repro.engines.tracing import CompileTrace
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CGroupBy,
    CMap,
    CSemiJoin,
    CUnion,
    Combinator,
    ScalarFn,
    explain,
)
from repro.optimizer.physical_props import PlanContext
from repro.optimizer.reorder import ReorderStats, reorder_operators


def key_on(attr_name: str, var: str = "x") -> ScalarFn:
    return ScalarFn((var,), Attr(Ref(var), attr_name))


def join(left=None, right=None) -> CEqJoin:
    return CEqJoin(
        kx=key_on("k"),
        ky=key_on("k"),
        left=left if left is not None else CBagRef(name="xs"),
        right=right if right is not None else CBagRef(name="ys"),
    )


def side_filter(side: int, field: str = "x") -> ScalarFn:
    """``\\p -> p[side].field > 0``."""
    return ScalarFn(
        ("p",),
        Compare(
            ">", Attr(Index(Ref("p"), Const(side)), field), Const(0)
        ),
    )


def run(plan, ctx=None, trace=None):
    stats = ReorderStats()
    out = reorder_operators(plan, stats, ctx, trace=trace)
    return out, stats


class TestJoinPushdown:
    def test_left_side_filter_pushes_left(self):
        plan = CFilter(predicate=side_filter(0), input=join())
        out, stats = run(plan)
        assert isinstance(out, CEqJoin)
        assert isinstance(out.left, CFilter)
        assert isinstance(out.left.input, CBagRef)
        assert out.left.predicate.params == ("_e",)
        assert "pushed-below-join" in out.left.reorder_note
        assert isinstance(out.right, CBagRef)
        assert stats.applied == 1 and stats.rejected == 0

    def test_right_side_filter_pushes_right(self):
        plan = CFilter(predicate=side_filter(1), input=join())
        out, stats = run(plan)
        assert isinstance(out, CEqJoin)
        assert isinstance(out.right, CFilter)
        assert isinstance(out.left, CBagRef)
        assert stats.applied == 1

    def test_tuple_repacked_predicate_still_pushes(self):
        # The unnesting residue: the pair rebuilt literally inside the
        # body — the syntactic free-variable test sees both sides.
        repack = TupleExpr(
            (Index(Ref("p"), Const(0)), Index(Ref("p"), Const(1)))
        )
        pred = ScalarFn(
            ("p",),
            Compare(
                ">", Attr(Index(repack, Const(1)), "x"), Const(0)
            ),
        )
        plan = CFilter(predicate=pred, input=join())
        out, stats = run(plan)
        assert isinstance(out, CEqJoin)
        assert isinstance(out.right, CFilter)
        assert stats.applied == 1

    def test_both_sides_predicate_stays(self):
        pred = ScalarFn(
            ("p",),
            Compare(
                "==",
                Attr(Index(Ref("p"), Const(0)), "x"),
                Attr(Index(Ref("p"), Const(1)), "y"),
            ),
        )
        plan = CFilter(predicate=pred, input=join())
        out, stats = run(plan)
        assert isinstance(out, CFilter)
        assert stats.applied == 0

    def test_top_predicate_stays(self):
        pred = ScalarFn(
            ("p",),
            Call(Ref("getattr"), (Ref("p"), Ref("name"))),
        )
        trace = CompileTrace()
        plan = CFilter(predicate=pred, input=join())
        out, stats = run(plan, trace=trace)
        assert isinstance(out, CFilter)
        assert stats.applied == 0
        assert any("TOP" in e.detail for e in trace.events)

    def test_cross_pushdown(self):
        plan = CFilter(
            predicate=side_filter(0),
            input=CCross(
                left=CBagRef(name="xs"), right=CBagRef(name="ys")
            ),
        )
        out, stats = run(plan)
        assert isinstance(out, CCross)
        assert isinstance(out.left, CFilter)
        assert stats.applied == 1

    def test_cached_join_is_a_barrier(self):
        plan = CFilter(
            predicate=side_filter(0), input=join().with_cache()
        )
        out, stats = run(plan)
        assert isinstance(out, CFilter)
        assert stats.applied == 0

    def test_shared_join_is_a_barrier(self):
        shared = join()
        plan = CUnion(
            left=CFilter(predicate=side_filter(0), input=shared),
            right=CMap(fn=ScalarFn.identity(), input=shared),
        )
        out, stats = run(plan)
        assert stats.applied == 0
        assert isinstance(out.left, CFilter)
        assert isinstance(out.left.input, CEqJoin)


class TestSemiJoinPushdown:
    def test_filter_commutes_to_left(self):
        plan = CFilter(
            predicate=ScalarFn(
                ("o",), Compare(">", Attr(Ref("o"), "x"), Const(0))
            ),
            input=CSemiJoin(
                kx=key_on("k"),
                ky=key_on("k"),
                left=CBagRef(name="xs"),
                right=CBagRef(name="ys"),
            ),
        )
        out, stats = run(plan)
        assert isinstance(out, CSemiJoin)
        assert isinstance(out.left, CFilter)
        assert out.left.predicate is plan.predicate
        assert "pushed-below-semijoin" in out.left.reorder_note
        assert stats.applied == 1


class TestGroupPushdown:
    def test_key_only_filter_composes_below_group_by(self):
        plan = CFilter(
            predicate=ScalarFn(
                ("g",),
                Compare("==", Attr(Ref("g"), "key"), Const("HIGH")),
            ),
            input=CGroupBy(
                key=key_on("priority", "o"), input=CBagRef(name="os")
            ),
        )
        out, stats = run(plan)
        assert isinstance(out, CGroupBy)
        pushed = out.input
        assert isinstance(pushed, CFilter)
        # g.key == "HIGH"  ∘  key=o.priority  ⇒  _e.priority == "HIGH"
        assert pushed.predicate.body == Compare(
            "==", Attr(Ref("_e"), "priority"), Const("HIGH")
        )
        assert "pushed-below-groupby" in pushed.reorder_note
        assert stats.applied == 1

    def test_agg_by_pushdown(self):
        plan = CFilter(
            predicate=ScalarFn(
                ("g",),
                Compare("==", Attr(Ref("g"), "key"), Const(3)),
            ),
            input=CAggBy(
                key=key_on("k", "o"),
                specs=(),
                input=CBagRef(name="os"),
            ),
        )
        out, stats = run(plan)
        assert isinstance(out, CAggBy)
        assert isinstance(out.input, CFilter)
        assert stats.applied == 1

    def test_value_reading_filter_stays_above_group(self):
        plan = CFilter(
            predicate=ScalarFn(
                ("g",),
                Compare(">", Attr(Ref("g"), "values"), Const(0)),
            ),
            input=CGroupBy(
                key=key_on("priority", "o"), input=CBagRef(name="os")
            ),
        )
        out, stats = run(plan)
        assert isinstance(out, CFilter)
        assert stats.applied == 0


class TestDistinctPushdown:
    def test_filter_commutes_below_distinct(self):
        plan = CFilter(
            predicate=ScalarFn(
                ("x",), Compare(">", Attr(Ref("x"), "v"), Const(0))
            ),
            input=CDistinct(input=CBagRef(name="xs")),
        )
        out, stats = run(plan)
        assert isinstance(out, CDistinct)
        assert isinstance(out.input, CFilter)
        assert "pushed-below-distinct" in out.input.reorder_note
        assert stats.applied == 1


class TestMapSwap:
    def test_filter_on_copied_field_swaps_before_map(self):
        # map \x -> (x.a, x.b + 1); filter \y -> y[0] > 0
        mp = CMap(
            fn=ScalarFn(
                ("x",),
                TupleExpr(
                    (
                        Attr(Ref("x"), "a"),
                        BinOp("+", Attr(Ref("x"), "b"), Const(1)),
                    )
                ),
            ),
            input=CBagRef(name="xs"),
        )
        plan = CFilter(
            predicate=ScalarFn(
                ("y",),
                Compare(">", Index(Ref("y"), Const(0)), Const(0)),
            ),
            input=mp,
        )
        out, stats = run(plan)
        assert isinstance(out, CMap)
        pushed = out.input
        assert isinstance(pushed, CFilter)
        assert pushed.predicate.body == Compare(
            ">", Attr(Ref("_e"), "a"), Const(0)
        )
        assert "swapped-before-map" in pushed.reorder_note
        assert stats.applied == 1

    def test_filter_on_computed_field_stays(self):
        mp = CMap(
            fn=ScalarFn(
                ("x",),
                TupleExpr(
                    (
                        Attr(Ref("x"), "a"),
                        BinOp("+", Attr(Ref("x"), "b"), Const(1)),
                    )
                ),
            ),
            input=CBagRef(name="xs"),
        )
        plan = CFilter(
            predicate=ScalarFn(
                ("y",),
                Compare(">", Index(Ref("y"), Const(1)), Const(0)),
            ),
            input=mp,
        )
        out, stats = run(plan)
        assert isinstance(out, CFilter)
        assert stats.applied == 0

    def test_constructor_map_is_opaque(self):
        mp = CMap(
            fn=ScalarFn(
                ("x",),
                Call(
                    Ref("Point"),
                    kwargs=(("a", Attr(Ref("x"), "a")),),
                ),
            ),
            input=CBagRef(name="xs"),
        )
        plan = CFilter(
            predicate=ScalarFn(
                ("y",), Compare(">", Attr(Ref("y"), "a"), Const(0))
            ),
            input=mp,
        )
        out, stats = run(plan)
        assert isinstance(out, CFilter)
        assert stats.applied == 0


class TestFixpointComposition:
    def test_filter_cascades_through_map_below_join(self):
        # filter(y[0].x > 0) over map(p -> (p[0], p[1])) over join:
        # swaps before the (re-packing) map, then sinks into the
        # join's left input — two rules composing across passes.
        mp = CMap(
            fn=ScalarFn(
                ("p",),
                TupleExpr(
                    (
                        Index(Ref("p"), Const(0)),
                        Index(Ref("p"), Const(1)),
                    )
                ),
            ),
            input=join(),
        )
        plan = CFilter(
            predicate=ScalarFn(
                ("y",),
                Compare(
                    ">",
                    Attr(Index(Ref("y"), Const(0)), "x"),
                    Const(0),
                ),
            ),
            input=mp,
        )
        out, stats = run(plan)
        assert stats.applied == 2
        assert isinstance(out, CMap)
        inner_join = out.input
        assert isinstance(inner_join, CEqJoin)
        assert isinstance(inner_join.left, CFilter)
        assert isinstance(inner_join.left.input, CBagRef)

    def test_chained_filters_all_sink(self):
        plan = CFilter(
            predicate=side_filter(0, "a"),
            input=CFilter(predicate=side_filter(1, "b"), input=join()),
        )
        out, stats = run(plan)
        assert stats.applied == 2
        assert isinstance(out, CEqJoin)
        assert isinstance(out.left, CFilter)
        assert isinstance(out.right, CFilter)


class TestCostModelConsult:
    def loop_ctx(self):
        return PlanContext(
            in_loop=True,
            cached_names=frozenset({"xs", "ys"}),
            stateful_names=frozenset(),
            loop_mutated=frozenset({"ranks"}),
        )

    def test_loop_varying_predicate_into_invariant_side_rejected(self):
        # The predicate closes over a loop-mutated driver name; the
        # target side is loop-invariant (a cached bag), so pushing
        # would invalidate the hoisted once-per-loop shuffle.
        pred = ScalarFn(
            ("p",),
            Compare(
                ">",
                Attr(Index(Ref("p"), Const(0)), "x"),
                Ref("ranks"),
            ),
        )
        trace = CompileTrace()
        plan = CFilter(predicate=pred, input=join())
        out, stats = run(plan, ctx=self.loop_ctx(), trace=trace)
        assert isinstance(out, CFilter)
        assert stats.rejected == 1 and stats.applied == 0
        assert any("hoist" in e.detail for e in trace.events)

    def test_invariant_predicate_still_pushes_in_loop(self):
        plan = CFilter(predicate=side_filter(0), input=join())
        out, stats = run(plan, ctx=self.loop_ctx())
        assert isinstance(out, CEqJoin)
        assert stats.applied == 1 and stats.rejected == 0

    def test_varying_predicate_into_varying_side_pushes(self):
        # Outside a loop-invariant side there is nothing to protect.
        pred = ScalarFn(
            ("p",),
            Compare(
                ">",
                Attr(Index(Ref("p"), Const(0)), "x"),
                Ref("ranks"),
            ),
        )
        ctx = PlanContext(
            in_loop=True,
            cached_names=frozenset(),
            loop_mutated=frozenset({"ranks"}),
        )
        plan = CFilter(predicate=pred, input=join())
        out, stats = run(plan, ctx=ctx)
        assert isinstance(out, CEqJoin)
        assert stats.applied == 1


class TestTraceAndExplain:
    def test_fired_events_carry_read_sets_and_plans(self):
        trace = CompileTrace()
        plan = CFilter(predicate=side_filter(1), input=join())
        run(plan, trace=trace)
        fired = [e for e in trace.events if e.fired]
        assert len(fired) == 1
        assert "reads" in fired[0].detail
        assert fired[0].before is not None
        assert fired[0].after is not None

    def test_skip_events_are_deduplicated_across_passes(self):
        trace = CompileTrace()
        pred = ScalarFn(
            ("p",),
            Compare(
                "==",
                Attr(Index(Ref("p"), Const(0)), "x"),
                Attr(Index(Ref("p"), Const(1)), "y"),
            ),
        )
        run(CFilter(predicate=pred, input=join()), trace=trace)
        skips = [e for e in trace.events if not e.fired]
        assert len(skips) == 1

    def test_explain_renders_reorder_note(self):
        out, _ = run(CFilter(predicate=side_filter(0), input=join()))
        text = explain(out)
        assert "[pushed-below-join: reads {x}]" in text

    def test_node_identity_preserved(self):
        filt = CFilter(predicate=side_filter(0), input=join())
        out, _ = run(filt)
        assert isinstance(out, CEqJoin)
        assert out.left.node_id == filt.node_id
        assert out.node_id == filt.input.node_id

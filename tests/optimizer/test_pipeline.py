"""Tests for the end-to-end compile pipeline and its reporting."""

import pytest

from repro.api import (
    DataBag,
    EmmaConfig,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
    parallelize,
)
from repro.optimizer.pipeline import PlanExpr, compile_program


@parallelize
def grouped_stats(xs: DataBag):
    groups = xs.group_by(lambda x: x % 3)
    return ((g.key, g.values.sum(), g.values.count()) for g in groups)


@parallelize
def filtered_by_lookup(xs: DataBag, lookup: DataBag):
    kept = (x for x in xs if lookup.exists(lambda y: y == x))
    return kept.count()


@parallelize
def loop_over_invariant(xs: DataBag, rounds):
    total = 0
    i = 0
    while i < rounds:
        total = total + xs.sum()
        i = i + 1
    return total


class TestReports:
    def test_fgf_reported(self):
        report = grouped_stats.report()
        assert report.fold_group_fusion_applied
        assert report.fused_groups == 1
        assert report.fused_folds == 2

    def test_fgf_disabled_by_config(self):
        report = grouped_stats.report(
            EmmaConfig(fold_group_fusion=False)
        )
        assert not report.fold_group_fusion_applied

    def test_unnesting_reported(self):
        report = filtered_by_lookup.report()
        assert report.unnesting_applied

    def test_unnesting_disabled_by_config(self):
        report = filtered_by_lookup.report(
            EmmaConfig(unnesting=False)
        )
        assert not report.unnesting_applied

    def test_caching_reported_for_loop_invariants(self):
        report = loop_over_invariant.report()
        assert report.caching_applied
        assert [d.name for d in report.cache_decisions] == ["xs"]

    def test_dataflow_sites_counted(self):
        assert grouped_stats.report().dataflow_sites >= 1

    def test_config_hashable_and_cached(self):
        a = grouped_stats.compiled(EmmaConfig())
        b = grouped_stats.compiled(EmmaConfig())
        assert a is b


class TestPlanExpr:
    def test_plan_expr_has_no_free_vars(self):
        compiled = grouped_stats.compiled()
        plans = [
            s
            for stmt in compiled.program.walk()
            for s in _walk_stmt_exprs(stmt)
            if isinstance(s, PlanExpr)
        ]
        assert plans
        assert all(p.free_vars() == frozenset() for p in plans)

    def test_unknown_kind_rejected(self):
        from repro.errors import EmmaError
        from repro.comprehension.exprs import Env
        from repro.lowering.combinators import CBagRef

        bad = PlanExpr(plan=CBagRef(name="x"), kind="nope")
        with pytest.raises(EmmaError, match="nope"):
            bad.evaluate(
                Env({"__engine__": SparkLikeEngine(), "__denv__": {}})
            )


class TestSemanticsUnderAllConfigs:
    @pytest.mark.parametrize(
        "config",
        [
            EmmaConfig.none(),
            EmmaConfig(unnesting=True, fold_group_fusion=False,
                       caching=False, partition_pulling=False),
            EmmaConfig(unnesting=False, fold_group_fusion=True,
                       caching=False, partition_pulling=False),
            EmmaConfig(unnesting=True, fold_group_fusion=True,
                       caching=True, partition_pulling=False),
            EmmaConfig.all(),
        ],
        ids=["none", "U", "GF", "U+GF+C", "all"],
    )
    @pytest.mark.parametrize(
        "engine_factory",
        [SparkLikeEngine, FlinkLikeEngine],
        ids=["spark", "flink"],
    )
    def test_every_config_matches_local_oracle(
        self, config, engine_factory
    ):
        xs = DataBag(range(30))
        lookup = DataBag([3, 7, 20, 20])
        oracle = filtered_by_lookup.run(
            LocalEngine(), xs=xs, lookup=lookup
        )
        result = filtered_by_lookup.run(
            engine_factory(), config=config, xs=xs, lookup=lookup
        )
        assert result == oracle == 3

    @pytest.mark.parametrize(
        "config",
        [EmmaConfig.none(), EmmaConfig.all()],
        ids=["none", "all"],
    )
    def test_grouping_matches_oracle(self, config):
        xs = DataBag(range(20))
        oracle = grouped_stats.run(LocalEngine(), xs=xs)
        result = grouped_stats.run(
            SparkLikeEngine(), config=config, xs=xs
        )
        assert result == oracle


def _walk_stmt_exprs(stmt):
    from repro.comprehension.exprs import walk
    from repro.optimizer.inlining import stmt_exprs

    for expr in stmt_exprs(stmt):
        yield from walk(expr)

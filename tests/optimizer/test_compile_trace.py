"""Unit tests for compile provenance (:class:`CompileTrace`).

``explain(trace=True)`` must name every optimizer/lowering pass that
fired on PageRank — inlining, caching, resugaring, fold-group fusion,
flat-map unnesting, the equi-join rewrite — with before/after IR, and
must say *why* a pass was skipped when the configuration disables it.
"""

from repro.engines.tracing import CompileTrace
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import tpch_q4


class TestPageRankProvenance:
    def test_trace_attached_to_compiled_program(self):
        compiled = pagerank.compiled()
        assert isinstance(compiled.trace, CompileTrace)
        assert len(compiled.trace) > 0

    def test_fired_rules_cover_the_pipeline(self):
        fired = set(pagerank.compiled().trace.fired_rules())
        assert {
            "inline-single-use",
            "cache-insert",
            "resugar",
            "normalize",
            "fold-group-fusion",
            "flatmap-unnest",
            "equi-join",
            "lower",
        } <= fired

    def test_explain_trace_renders_report(self):
        text = pagerank.explain(trace=True)
        assert "== compile provenance ==" in text
        for rule in (
            "inline-single-use",
            "cache-insert",
            "fold-group-fusion",
            "equi-join",
            "flatmap-unnest",
            "chain-fuse",
        ):
            assert rule in text, f"missing {rule} in provenance"
        assert "[fired]" in text and "[skip ]" in text
        assert "before:" in text and "after:" in text
        # The equi-join record shows the lowered combinator subtree.
        assert "EqJoin" in text

    def test_explain_without_trace_omits_report(self):
        assert "compile provenance" not in pagerank.explain()

    def test_events_carry_phase_and_site(self):
        trace = pagerank.compiled().trace
        phases = {e.phase for e in trace.events}
        assert {
            "inlining",
            "caching",
            "site compilation",
            "lowering",
            "operator chaining",
        } <= phases
        lowering = trace.for_phase("lowering")
        assert lowering and all(
            e.site is not None for e in lowering
        )


class TestDisabledConfigs:
    def test_none_config_records_skips_with_reasons(self):
        text = pagerank.explain(EmmaConfig.none(), trace=True)
        assert text.count("disabled by config") >= 4
        trace = pagerank.compiled(EmmaConfig.none()).trace
        # .none() keeps inlining on (a preprocessing step, not a
        # Table 1 row); every other pass must record a skip.
        skipped = {e.rule for e in trace.events if not e.fired}
        assert {
            "cache-insert",
            "fold-group-fusion",
            "chain-fuse",
        } <= skipped

    def test_chaining_skip_reason_when_nothing_fuses(self):
        trace = pagerank.compiled().trace
        chain = trace.for_phase("operator chaining")
        assert chain
        assert all(not e.fired for e in chain)
        assert any("record-wise" in e.detail for e in chain)


class TestSemiAntiJoinProvenance:
    def test_q4_records_semi_join(self):
        # TPC-H Q4's EXISTS subquery lowers to a semi-join.
        fired = set(tpch_q4.compiled().trace.fired_rules())
        assert "semi-join" in fired

    def test_render_groups_by_phase(self):
        text = tpch_q4.compiled().trace.render()
        assert text.startswith("== compile provenance ==")
        assert "phase lowering:" in text


class TestCompileTraceUnit:
    def test_record_and_render_empty(self):
        trace = CompileTrace()
        assert "(no passes recorded)" in trace.render()

    def test_render_lazy_ir(self):
        trace = CompileTrace()
        trace.record(
            "lowering",
            "demo",
            True,
            detail="x",
            site=1,
            before="plain text",
        )
        out = trace.render()
        assert "[fired] demo [site 1]: x" in out
        assert "before: plain text" in out

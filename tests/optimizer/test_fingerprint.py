"""Plan and snapshot fingerprints: identity, invalidation, stability.

The regression that matters most: every *plan-affecting* config knob
must invalidate the plan fingerprint (a stale cached plan compiled
with different optimizations would silently serve the wrong plan),
while runtime-only knobs must *not* (one cached plan serves every
backend because results are bit-identical across them).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.engines.dfs import SimulatedDFS
from repro.optimizer.fingerprint import (
    PLAN_KNOBS,
    plan_fingerprint,
    snapshot_fingerprint,
    value_digest,
)
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch.q1 import tpch_q1


class TestPlanFingerprint:
    def test_deterministic(self):
        cfg = EmmaConfig()
        a = plan_fingerprint(tpch_q1.lifted.program, cfg)
        b = plan_fingerprint(tpch_q1.lifted.program, cfg)
        assert a == b
        assert len(a) == 64  # hex sha256

    def test_distinguishes_programs(self):
        cfg = EmmaConfig()
        assert plan_fingerprint(
            tpch_q1.lifted.program, cfg
        ) != plan_fingerprint(pagerank.lifted.program, cfg)

    @pytest.mark.parametrize("knob", PLAN_KNOBS)
    def test_every_plan_knob_invalidates(self, knob):
        base = EmmaConfig()
        current = getattr(base, knob)
        if isinstance(current, bool):
            flipped = dataclasses.replace(base, **{knob: not current})
        else:
            # String-valued knobs (udf_reordering, columnar,
            # columnar_exchange) toggle between "off" and an on-mode.
            flipped = dataclasses.replace(
                base, **{knob: "off" if current != "off" else "on"}
            )
        assert plan_fingerprint(
            tpch_q1.lifted.program, base
        ) != plan_fingerprint(tpch_q1.lifted.program, flipped)

    def test_udf_reordering_columnar_physical_regression(self):
        # The three knobs that have historically gated whole compile
        # passes each get an explicit regression pin.
        base = EmmaConfig()
        fp = plan_fingerprint(tpch_q1.lifted.program, base)
        for knob, value in (
            ("udf_reordering", False),
            ("columnar", "off"),
            ("physical_planning", False),
        ):
            toggled = dataclasses.replace(base, **{knob: value})
            assert (
                plan_fingerprint(tpch_q1.lifted.program, toggled) != fp
            ), f"toggling {knob} must invalidate the plan cache"

    def test_runtime_knobs_preserve(self):
        # Execution mode, memory budget, and tracing change *how* a
        # plan runs, never *what* was compiled: same fingerprint, so a
        # plan cached under one backend warms every other.
        base = EmmaConfig()
        fp = plan_fingerprint(tpch_q1.lifted.program, base)
        for change in (
            {"execution_mode": "processes"},
            {"memory_budget": 262144},
            {"tracing": True},
            {"max_parallel_tasks": 2},
        ):
            varied = dataclasses.replace(base, **change)
            assert (
                plan_fingerprint(tpch_q1.lifted.program, varied) == fp
            ), f"runtime knob {change} must not invalidate the plan cache"


class TestSnapshotFingerprint:
    def test_path_content_sensitivity(self):
        dfs = SimulatedDFS()
        dfs.put("data/in", [1, 2, 3])
        a = snapshot_fingerprint({"path": "data/in"}, dfs=dfs)
        dfs.put("data/in", [1, 2, 4])
        b = snapshot_fingerprint({"path": "data/in"}, dfs=dfs)
        assert a is not None and b is not None
        # Re-staging different records at the same path invalidates.
        assert a != b

    def test_plain_value_params(self):
        a = snapshot_fingerprint({"k": 3, "eps": 0.5})
        b = snapshot_fingerprint({"k": 3, "eps": 0.5})
        c = snapshot_fingerprint({"k": 4, "eps": 0.5})
        assert a == b != c

    def test_captured_environment_included(self):
        base = snapshot_fingerprint({}, captured={"damping": 0.85})
        other = snapshot_fingerprint({}, captured={"damping": 0.5})
        assert base != other

    def test_unstable_inputs_are_uncacheable(self):
        # A lambda has no cross-process identity: the whole snapshot
        # must refuse to fingerprint rather than guess.
        assert (
            snapshot_fingerprint({"fn": lambda x: x}) is None
        )
        assert snapshot_fingerprint({"obj": object()}) is None

    def test_workload_captured_env_fingerprints(self):
        # Both benchmark workloads capture module-level helpers
        # (formats, dataclasses, constants) — all must digest.
        for algo in (tpch_q1, pagerank):
            assert (
                snapshot_fingerprint({}, captured=algo.lifted.captured)
                is not None
            ), f"{algo.name} captured environment must be cacheable"


class TestValueDigest:
    def test_named_function_digests(self):
        digest = value_digest(len)
        assert digest is not None and digest[0] == "fn"

    def test_class_digests(self):
        digest = value_digest(SimulatedDFS)
        assert digest == (
            "type",
            "repro.engines.dfs",
            "SimulatedDFS",
        )

    def test_nested_containers(self):
        value = {"a": [1, (2, 3)], "b": SimulatedDFS}
        assert value_digest(value) is not None

    def test_foreign_objects_refused(self):
        class Foreign:
            pass

        assert value_digest(Foreign()) is None

"""Tests for fold-group fusion (paper Section 4.2.2)."""

from dataclasses import dataclass

from repro.comprehension.exprs import (
    AggByCall,
    AlgebraSpec,
    Attr,
    BinOp,
    Call,
    Compare,
    Const,
    FoldCall,
    GroupByCall,
    Lambda,
    MapCall,
    Ref,
    TupleExpr,
    evaluate,
    walk,
)
from repro.comprehension.ir import BAG, Comprehension, Generator, Guard
from repro.comprehension.normalize import normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag
from repro.optimizer.fold_group_fusion import (
    FusionStats,
    fold_group_fusion,
)


@dataclass(frozen=True)
class R:
    k: int
    v: int


def _values_fold(g: str, alias: str, head=None) -> FoldCall:
    source = Attr(Ref(g), "values")
    if head is not None:
        source = MapCall(source, Lambda(("x",), head))
    return FoldCall(source, AlgebraSpec(alias))


def _prepare(expr):
    return normalize(resugar(expr))


def _fuse(expr):
    stats = FusionStats()
    return fold_group_fusion(_prepare(expr), stats), stats


def group_comp(head):
    return Comprehension(
        head=head,
        qualifiers=(
            Generator(
                "g",
                GroupByCall(
                    Ref("xs"), Lambda(("x",), Attr(Ref("x"), "k"))
                ),
            ),
        ),
        kind=BAG,
    )


ENV = {"xs": DataBag([R(1, 10), R(1, 20), R(2, 5)])}


class TestFusion:
    def test_single_fold_fuses(self):
        comp = group_comp(
            TupleExpr(
                (Attr(Ref("g"), "key"), _values_fold("g", "count"))
            )
        )
        fused, stats = _fuse(comp)
        assert stats.fused_groups == 1
        aggs = [n for n in walk(fused) if isinstance(n, AggByCall)]
        assert len(aggs) == 1
        assert evaluate(fused, ENV) == evaluate(comp, ENV)

    def test_multiple_folds_banana_split(self):
        comp = group_comp(
            TupleExpr(
                (
                    Attr(Ref("g"), "key"),
                    _values_fold(
                        "g", "sum", head=Attr(Ref("x"), "v")
                    ),
                    _values_fold("g", "count"),
                )
            )
        )
        fused, stats = _fuse(comp)
        assert stats.fused_groups == 1
        assert stats.fused_folds == 2
        assert evaluate(fused, ENV) == evaluate(comp, ENV) == DataBag(
            [(1, 30, 2), (2, 5, 1)]
        )

    def test_identical_folds_deduplicated(self):
        count = _values_fold("g", "count")
        comp = group_comp(
            BinOp("+", count, count)
        )
        fused, stats = _fuse(comp)
        assert stats.fused_folds == 1
        assert evaluate(fused, ENV) == DataBag([4, 2])

    def test_alpha_equivalent_folds_deduplicated(self):
        # Two syntactically distinct map lambdas with the same meaning.
        f1 = FoldCall(
            MapCall(
                Attr(Ref("g"), "values"),
                Lambda(("a",), Attr(Ref("a"), "v")),
            ),
            AlgebraSpec("sum"),
        )
        f2 = FoldCall(
            MapCall(
                Attr(Ref("g"), "values"),
                Lambda(("b",), Attr(Ref("b"), "v")),
            ),
            AlgebraSpec("sum"),
        )
        comp = group_comp(TupleExpr((f1, f2)))
        fused, stats = _fuse(comp)
        assert stats.fused_folds == 1

    def test_guarded_fold_fuses_filter_into_singleton(self):
        filtered = FoldCall(
            MapCall(
                Attr(Ref("g"), "values"),
                Lambda(("x",), Attr(Ref("x"), "v")),
            ),
            AlgebraSpec("sum"),
        )
        # add a filter stage: sum of v where v > 7
        from repro.comprehension.exprs import FilterCall

        filtered = FoldCall(
            MapCall(
                FilterCall(
                    Attr(Ref("g"), "values"),
                    Lambda(
                        ("x",),
                        Compare(">", Attr(Ref("x"), "v"), Const(7)),
                    ),
                ),
                Lambda(("x",), Attr(Ref("x"), "v")),
            ),
            AlgebraSpec("sum"),
        )
        comp = group_comp(
            TupleExpr((Attr(Ref("g"), "key"), filtered))
        )
        fused, stats = _fuse(comp)
        assert stats.fused_groups == 1
        assert evaluate(fused, ENV) == evaluate(comp, ENV) == DataBag(
            [(1, 30), (2, 0)]
        )

    def test_guards_on_aggregates_rewritten_too(self):
        # HAVING-style: keep groups with count > 1.
        comp = Comprehension(
            head=Attr(Ref("g"), "key"),
            qualifiers=(
                Generator(
                    "g",
                    GroupByCall(
                        Ref("xs"),
                        Lambda(("x",), Attr(Ref("x"), "k")),
                    ),
                ),
                Guard(
                    Compare(
                        ">", _values_fold("g", "count"), Const(1)
                    )
                ),
            ),
            kind=BAG,
        )
        fused, stats = _fuse(comp)
        assert stats.fused_groups == 1
        assert evaluate(fused, ENV) == DataBag([1])


class TestConservatism:
    def test_escaping_group_values_block_fusion(self):
        # The raw values escape into the head: no fusion possible.
        comp = group_comp(
            TupleExpr(
                (Attr(Ref("g"), "values"), _values_fold("g", "count"))
            )
        )
        fused, stats = _fuse(comp)
        assert stats.fused_groups == 0
        assert not [
            n for n in walk(fused) if isinstance(n, AggByCall)
        ]

    def test_bare_group_reference_blocks_fusion(self):
        comp = group_comp(Ref("g"))
        _fused, stats = _fuse(comp)
        assert stats.fused_groups == 0

    def test_no_folds_means_no_fusion(self):
        comp = group_comp(Attr(Ref("g"), "key"))
        _fused, stats = _fuse(comp)
        assert stats.fused_groups == 0

    def test_later_generator_over_values_blocks_fusion(self):
        comp = Comprehension(
            head=Ref("v"),
            qualifiers=(
                Generator(
                    "g",
                    GroupByCall(
                        Ref("xs"),
                        Lambda(("x",), Attr(Ref("x"), "k")),
                    ),
                ),
                Generator("v", Attr(Ref("g"), "values")),
            ),
            kind=BAG,
        )
        _fused, stats = _fuse(comp)
        assert stats.fused_groups == 0

    def test_key_only_use_is_fine_alongside_folds(self):
        comp = group_comp(
            Call(
                Const(lambda k, c: (k, c)),
                (Attr(Ref("g"), "key"), _values_fold("g", "count")),
            )
        )
        _fused, stats = _fuse(comp)
        assert stats.fused_groups == 1

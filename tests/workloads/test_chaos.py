"""Chaos-differential suite: every workload under aggressive faults.

The headline guarantee of the fault-injection subsystem: a run under an
aggressive deterministic fault plan — task crashes, whole-worker loss,
stragglers — must produce *bit-identical* results to the fault-free
run, on both engines, with operator chaining on and off.  Faults may
only cost simulated time, never correctness.

The :meth:`FaultPlan.aggressive` schedule guarantees at least one
crash, one worker loss, and one straggler per run via explicit early
events, on top of seeded probabilistic background fire.
"""

import pytest

from repro.api import DataBag, EmmaConfig
from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.workloads import datagen, graphs
from repro.workloads.connected_components import connected_components
from repro.workloads.kmeans import initial_centroids, kmeans
from repro.workloads.pagerank import pagerank
from repro.workloads.spam import default_classifiers, select_classifier
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

ENGINES = {"spark": SparkLikeEngine, "flink": FlinkLikeEngine}

CHAOS = FaultPlan.aggressive(seed=17)


@pytest.fixture(scope="module")
def world():
    """Shared staged datasets (module-scoped: generation is costly)."""
    dfs = SimulatedDFS()
    emails_path, blacklist_path = datagen.stage_spam_inputs(
        dfs, num_emails=240, num_blacklisted=20, num_ips=90
    )
    points_path = datagen.stage_points(dfs, n=150, centers=3, dim=2)
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=90)
    cc_path = "data/cc-graph"
    dfs.put(cc_path, graphs.generate_component_graph(60, num_components=3))
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.05)
    return {
        "dfs": dfs,
        "emails": emails_path,
        "blacklist": blacklist_path,
        "points": points_path,
        "graph": graph_path,
        "cc": cc_path,
        "orders": orders_path,
        "lineitem": lineitem_path,
    }


def _materialize(result):
    if isinstance(result, DataBag):
        return sorted(result.fetch(), key=repr)
    if isinstance(result, tuple):
        return tuple(_materialize(r) for r in result)
    if isinstance(result, list):
        return sorted(result, key=repr)
    return result


def run_pair(world, kind, chain, algo, **params):
    """Run fault-free and chaos configs; return (clean, chaos engine)."""
    cls = ENGINES[kind]

    clean_engine = cls(
        cluster=ClusterConfig(num_workers=4), dfs=world["dfs"]
    )
    clean = algo.run(
        clean_engine,
        config=EmmaConfig(operator_chaining=chain),
        **params,
    )

    chaos_engine = cls(
        cluster=ClusterConfig(num_workers=4), dfs=world["dfs"]
    )
    faulty = algo.run(
        chaos_engine,
        config=EmmaConfig(
            operator_chaining=chain,
            fault_plan=CHAOS,
            checkpoint_interval=2,
        ),
        **params,
    )

    # Bit-identical results: faults cost simulated time, never change
    # what the program computes.
    assert _materialize(faulty) == _materialize(clean), (
        f"{algo.name} on {kind} (chaining={chain}) diverged under faults"
    )
    m = chaos_engine.metrics
    assert m.tasks_retried > 0, "chaos run saw no task retry"
    assert m.workers_lost > 0, "chaos run saw no worker loss"
    assert m.stragglers_injected > 0, "chaos run saw no straggler"
    assert m.recovery_seconds > 0
    # Recovery is visible in the simulated time, not free.
    assert (
        m.simulated_seconds > clean_engine.metrics.simulated_seconds
    )
    return clean_engine, chaos_engine


ENGINE_CHAIN = [
    pytest.param(kind, chain, id=f"{kind}-chain{'on' if chain else 'off'}")
    for kind in ENGINES
    for chain in (True, False)
]


@pytest.mark.parametrize("kind,chain", ENGINE_CHAIN)
class TestChaosDifferential:
    def test_spam(self, world, kind, chain):
        run_pair(
            world,
            kind,
            chain,
            select_classifier,
            emails_path=world["emails"],
            blacklist_path=world["blacklist"],
            classifiers=default_classifiers(3),
        )

    def test_kmeans(self, world, kind, chain):
        init = initial_centroids(
            world["dfs"].get(world["points"]).records, 3
        )
        _, chaos = run_pair(
            world,
            kind,
            chain,
            kmeans,
            points_path=world["points"],
            initial=init,
            epsilon=1e-6,
            max_iterations=8,
        )
        if kind == "spark":
            # Worker loss hits the in-memory point cache; the next read
            # rebuilds the lost partitions from lineage.
            assert chaos.metrics.partitions_recomputed > 0

    def test_pagerank(self, world, kind, chain):
        n = len(world["dfs"].get(world["graph"]).records)
        _, chaos = run_pair(
            world,
            kind,
            chain,
            pagerank,
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=5,
        )
        # Iterative state survives worker loss via checkpoint + replay.
        assert chaos.metrics.checkpoint_restores > 0
        if kind == "spark":
            assert chaos.metrics.partitions_recomputed > 0

    def test_connected_components(self, world, kind, chain):
        _, chaos = run_pair(
            world,
            kind,
            chain,
            connected_components,
            graph_path=world["cc"],
        )
        assert chaos.metrics.checkpoint_restores > 0

    def test_tpch_q1(self, world, kind, chain):
        run_pair(
            world,
            kind,
            chain,
            tpch_q1,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )

    def test_tpch_q4(self, world, kind, chain):
        run_pair(
            world,
            kind,
            chain,
            tpch_q4,
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1994-01-01",
            date_max="1994-07-01",
        )

"""Tests for the synthetic data generators."""

from collections import Counter

import pytest

from repro.engines.dfs import SimulatedDFS
from repro.workloads import datagen
from repro.workloads.datagen import (
    PARETO_HOT_FRACTION,
    extract_features,
    generate_blacklist,
    generate_emails,
    generate_keyed_tuples,
    generate_points,
)
from repro.workloads.graphs import (
    generate_component_graph,
    generate_follower_graph,
)
from repro.workloads.tpch.datagen import generate_tpch
from repro.workloads.tpch.schema import ORDER_PRIORITIES


class TestEmails:
    def test_deterministic(self):
        assert generate_emails(50, seed=1) == generate_emails(50, seed=1)
        assert generate_emails(50, seed=1) != generate_emails(50, seed=2)

    def test_ip_range_respected(self):
        emails = generate_emails(100, num_ips=10)
        assert all(0 <= e.ip < 10 for e in emails)

    def test_extract_features_is_deterministic_and_keyed(self):
        (raw,) = generate_emails(1)
        a, b = extract_features(raw), extract_features(raw)
        assert a == b
        assert a.id == raw.id and a.ip == raw.ip
        assert len(a.features) == 5

    def test_blacklist_ips_distinct(self):
        bl = generate_blacklist(50, num_ips=100)
        ips = [b.ip for b in bl]
        assert len(set(ips)) == len(ips)

    def test_blacklist_capped_by_ip_space(self):
        assert len(generate_blacklist(100, num_ips=7)) == 7

    def test_stage_spam_inputs(self):
        dfs = SimulatedDFS()
        ep, bp = datagen.stage_spam_inputs(
            dfs, num_emails=10, num_blacklisted=3, num_ips=20
        )
        assert dfs.exists(ep) and dfs.exists(bp)
        assert len(dfs.get(ep).records) == 10


class TestPoints:
    def test_points_cluster_around_centers(self):
        points = generate_points(300, centers=3, dim=2, spread=0.5)
        assert len(points) == 300
        # Points of one residue class share a center: tight spread.
        cluster = [p for p in points if p.id % 3 == 0]
        xs = [p.pos[0] for p in cluster]
        mean = sum(xs) / len(xs)
        assert all(abs(x - mean) < 5 for x in xs)

    def test_ids_unique(self):
        points = generate_points(100)
        assert len({p.id for p in points}) == 100


class TestKeyedTuples:
    def test_uniform_spreads_keys(self):
        rows = generate_keyed_tuples(
            3000, num_keys=10, distribution="uniform"
        )
        counts = Counter(r.key for r in rows)
        assert len(counts) == 10
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_gaussian_prefers_middle_keys(self):
        rows = generate_keyed_tuples(
            3000, num_keys=100, distribution="gaussian"
        )
        counts = Counter(r.key for r in rows)
        middle = sum(counts.get(k, 0) for k in range(40, 60))
        edges = sum(counts.get(k, 0) for k in range(0, 20))
        assert middle > 2 * edges

    def test_pareto_hot_key_fraction(self):
        rows = generate_keyed_tuples(
            5000, num_keys=100, distribution="pareto"
        )
        counts = Counter(r.key for r in rows)
        hot = counts[0] / len(rows)
        assert abs(hot - PARETO_HOT_FRACTION) < 0.05

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            generate_keyed_tuples(10, distribution="zipf")

    def test_payload_sizes(self):
        rows = generate_keyed_tuples(100)
        assert all(3 <= len(r.payload) <= 10 for r in rows)


class TestGraphs:
    def test_follower_graph_shape(self):
        vertices = generate_follower_graph(200, edges_per_vertex=3)
        assert len(vertices) == 200
        assert all(v.neighbors for v in vertices)
        assert all(v.id not in v.neighbors for v in vertices)

    def test_follower_graph_is_heavy_tailed(self):
        vertices = generate_follower_graph(500, edges_per_vertex=3)
        indeg = Counter()
        for v in vertices:
            for n in v.neighbors:
                indeg[n] += 1
        top = max(indeg.values())
        median = sorted(indeg.values())[len(indeg) // 2]
        assert top > 10 * max(median, 1)

    def test_follower_graph_needs_two_vertices(self):
        with pytest.raises(ValueError):
            generate_follower_graph(1)

    def test_component_graph_has_expected_components(self):
        vertices = generate_component_graph(60, num_components=4)
        # Union-find ground truth.
        parent = {v.id: v.id for v in vertices}

        def find(a):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for v in vertices:
            for n in v.neighbors:
                parent[find(v.id)] = find(n)
        assert len({find(v.id) for v in vertices}) == 4

    def test_component_graph_symmetric_adjacency(self):
        vertices = generate_component_graph(40, num_components=2)
        adj = {v.id: set(v.neighbors) for v in vertices}
        for v in vertices:
            for n in v.neighbors:
                assert v.id in adj[n]


class TestTpchGenerator:
    def test_row_counts_scale(self):
        orders1, items1 = generate_tpch(0.1)
        orders2, items2 = generate_tpch(0.2)
        assert len(orders2) == 2 * len(orders1)
        assert 1 <= len(items1) / len(orders1) <= 7

    def test_schema_invariants(self):
        orders, items = generate_tpch(0.05)
        order_keys = {o.order_key for o in orders}
        assert len(order_keys) == len(orders)
        assert all(i.order_key in order_keys for i in items)
        assert all(o.order_priority in ORDER_PRIORITIES for o in orders)
        assert all(0 <= i.discount <= 0.10 for i in items)
        assert all(i.ship_date > "1992-01-01" for i in items)
        assert all(i.receipt_date > i.ship_date for i in items)

    def test_deterministic(self):
        assert generate_tpch(0.05) == generate_tpch(0.05)

"""Differential and correctness tests for the evaluation workloads.

Every workload must produce the same result on the local oracle, the
Spark-like engine, and the Flink-like engine (for every optimization
configuration we care about), and must agree with an independently
coded plain-Python oracle.
"""

from collections import Counter, defaultdict

import pytest

from repro.api import (
    DataBag,
    EmmaConfig,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
)
from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.workloads import datagen, graphs
from repro.workloads.connected_components import connected_components
from repro.workloads.groupagg import group_min
from repro.workloads.kmeans import initial_centroids, kmeans
from repro.workloads.pagerank import DAMPING, pagerank
from repro.workloads.spam import default_classifiers, select_classifier
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

from tests.conftest import assert_bags_match


@pytest.fixture(scope="module")
def world():
    """Shared staged datasets (module-scoped: generation is costly)."""
    dfs = SimulatedDFS()
    emails_path, blacklist_path = datagen.stage_spam_inputs(
        dfs, num_emails=400, num_blacklisted=25, num_ips=120
    )
    points_path = datagen.stage_points(dfs, n=240, centers=3, dim=2)
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=120)
    cc_path = "data/cc-graph"
    dfs.put(cc_path, graphs.generate_component_graph(80, num_components=3))
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.1)
    tuples_path = datagen.stage_keyed_tuples(
        dfs, 800, num_keys=20, distribution="pareto"
    )
    return {
        "dfs": dfs,
        "emails": emails_path,
        "blacklist": blacklist_path,
        "points": points_path,
        "graph": graph_path,
        "cc": cc_path,
        "orders": orders_path,
        "lineitem": lineitem_path,
        "tuples": tuples_path,
    }


def local_engine(world):
    engine = LocalEngine()
    engine.dfs = world["dfs"]
    return engine


def engines_for(world):
    dfs = world["dfs"]
    local = LocalEngine()
    local.dfs = dfs
    return [
        local,
        SparkLikeEngine(cluster=ClusterConfig(num_workers=4), dfs=dfs),
        FlinkLikeEngine(cluster=ClusterConfig(num_workers=4), dfs=dfs),
    ]


def run_everywhere(world, algo, **params):
    results = [
        algo.run(engine, **params) for engine in engines_for(world)
    ]
    base = results[0]
    for other in results[1:]:
        if isinstance(base, DataBag):
            assert_bags_match(other, base, rel=1e-6)
        else:
            assert _loose_equal(other, base)
    return base


def _loose_equal(a, b):
    from tests.conftest import approx_value_equal

    return approx_value_equal(a, b, rel=1e-6, abs_=1e-6)


class TestSpamWorkflow:
    def test_backends_agree(self, world):
        result = run_everywhere(
            world,
            select_classifier,
            emails_path=world["emails"],
            blacklist_path=world["blacklist"],
            classifiers=default_classifiers(4),
        )
        classifier, hits = result
        assert classifier is not None and hits >= 0

    def test_matches_plain_python_oracle(self, world):
        dfs = world["dfs"]
        raw = dfs.get(world["emails"]).records
        blacklist = {
            b.ip for b in dfs.get(world["blacklist"]).records
        }
        emails = [datagen.extract_features(r) for r in raw]
        classifiers = default_classifiers(4)
        best, best_hits = None, None
        for c in classifiers:
            hits = sum(
                1
                for e in emails
                if not c.is_spam(e) and e.ip in blacklist
            )
            if best_hits is None or hits < best_hits:
                best, best_hits = c, hits
        result = select_classifier.run(
            local_engine(world),
            emails_path=world["emails"],
            blacklist_path=world["blacklist"],
            classifiers=classifiers,
        )
        # oracle-kept: strictly-smaller comparison keeps the first
        # minimum; so must the workload.
        assert result == (best, best_hits)

    def test_baseline_config_agrees(self, world):
        engine = SparkLikeEngine(dfs=world["dfs"])
        optimized = select_classifier.run(
            SparkLikeEngine(dfs=world["dfs"]),
            emails_path=world["emails"],
            blacklist_path=world["blacklist"],
            classifiers=default_classifiers(3),
        )
        baseline = select_classifier.run(
            engine,
            config=EmmaConfig.none(),
            emails_path=world["emails"],
            blacklist_path=world["blacklist"],
            classifiers=default_classifiers(3),
        )
        assert optimized == baseline


class TestKmeans:
    def test_backends_agree_and_converge(self, world):
        init = initial_centroids(
            world["dfs"].get(world["points"]).records, 3
        )
        result = run_everywhere(
            world,
            kmeans,
            points_path=world["points"],
            initial=init,
            epsilon=1e-6,
            max_iterations=25,
        )
        assert len(result) == 3

    def test_centroids_match_plain_python_lloyd(self, world):
        points = world["dfs"].get(world["points"]).records
        init = initial_centroids(points, 3)
        result = kmeans.run(
            local_engine(world),
            points_path=world["points"],
            initial=init,
            epsilon=1e-9,
            max_iterations=40,
        )
        # Plain-python Lloyd iterations with the same init.
        centroids = {c.cid: c.pos for c in init}
        for _ in range(40):
            sums: dict = defaultdict(list)
            for p in points:
                nearest = min(
                    centroids,
                    key=lambda cid: centroids[cid].squared_distance_to(
                        p.pos
                    ),
                )
                sums[nearest].append(p.pos)
            new = {
                cid: sum(ps[1:], ps[0]) / len(ps)
                for cid, ps in sums.items()
            }
            if all(
                new[c].distance_to(centroids[c]) < 1e-12 for c in new
            ):
                centroids = new
                break
            centroids = new
        got = {c.cid: c.pos for c in result}
        assert set(got) == set(centroids)
        for cid in got:
            assert got[cid].distance_to(centroids[cid]) < 1e-6

    def test_no_fgf_same_result(self, world):
        init = initial_centroids(
            world["dfs"].get(world["points"]).records, 3
        )
        a = kmeans.run(
            SparkLikeEngine(dfs=world["dfs"]),
            points_path=world["points"],
            initial=init,
            epsilon=1e-6,
            max_iterations=10,
        )
        b = kmeans.run(
            SparkLikeEngine(dfs=world["dfs"]),
            config=EmmaConfig(fold_group_fusion=False),
            points_path=world["points"],
            initial=init,
            epsilon=1e-6,
            max_iterations=10,
        )
        assert_bags_match(a, b, rel=1e-6)


class TestPageRank:
    def test_backends_agree(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        result = run_everywhere(
            world,
            pagerank,
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=6,
        )
        assert len(result) == n

    def test_matches_plain_python_pagerank(self, world):
        vertices = world["dfs"].get(world["graph"]).records
        n = len(vertices)
        ranks = {v.id: 1.0 / n for v in vertices}
        for _ in range(6):
            incoming: dict = defaultdict(float)
            for v in vertices:
                share = ranks[v.id] / len(v.neighbors)
                for t in v.neighbors:
                    incoming[t] += share
            # Vertices with no incoming messages keep their old rank
            # (message-driven update semantics).
            ranks = {
                v.id: (
                    (1 - DAMPING) / n + DAMPING * incoming[v.id]
                    if v.id in incoming
                    else ranks[v.id]
                )
                for v in vertices
            }
        result = pagerank.run(
            local_engine(world),
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=6,
        )
        got = {r.id: r.rank for r in result}
        assert got.keys() == ranks.keys()
        for vid in got:
            assert got[vid] == pytest.approx(ranks[vid], rel=1e-9)


class TestConnectedComponents:
    def test_backends_agree(self, world):
        result = run_everywhere(
            world, connected_components, graph_path=world["cc"]
        )
        assert len(result) == 80

    def test_labels_match_union_find(self, world):
        vertices = world["dfs"].get(world["cc"]).records
        parent = {v.id: v.id for v in vertices}

        def find(a):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for v in vertices:
            for nb in v.neighbors:
                parent[find(v.id)] = find(nb)
        component_max: dict = defaultdict(int)
        for v in vertices:
            root = find(v.id)
            component_max[root] = max(component_max[root], v.id)
        result = connected_components.run(
            local_engine(world), graph_path=world["cc"]
        )
        for state in result:
            assert state.component == component_max[find(state.id)]


class TestTpchQueries:
    def test_q1_backends_agree(self, world):
        result = run_everywhere(
            world,
            tpch_q1,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )
        assert 1 <= len(result) <= 6  # at most |flags| x |statuses|

    def test_q1_matches_sql_semantics(self, world):
        items = world["dfs"].get(world["lineitem"]).records
        filtered = [
            l for l in items if l.ship_date <= "1996-12-01"
        ]
        expected: dict = defaultdict(lambda: [0.0, 0.0, 0.0, 0.0, 0])
        for l in filtered:
            acc = expected[(l.return_flag, l.line_status)]
            acc[0] += l.quantity
            acc[1] += l.extended_price
            acc[2] += l.extended_price * (1 - l.discount)
            acc[3] += l.extended_price * (1 - l.discount) * (1 + l.tax)
            acc[4] += 1
        result = tpch_q1.run(
            local_engine(world),
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )
        assert len(result) == len(expected)
        for row in result:
            acc = expected[(row.return_flag, row.line_status)]
            assert row.sum_qty == pytest.approx(acc[0])
            assert row.sum_disc_price == pytest.approx(acc[2])
            assert row.count_order == acc[4]
            assert row.avg_qty == pytest.approx(acc[0] / acc[4])

    def test_q4_backends_agree(self, world):
        result = run_everywhere(
            world,
            tpch_q4,
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1994-01-01",
            date_max="1994-07-01",
        )
        assert all(count > 0 for _prio, count in result)

    def test_q4_matches_sql_semantics(self, world):
        orders = world["dfs"].get(world["orders"]).records
        items = world["dfs"].get(world["lineitem"]).records
        late_orders = {
            l.order_key
            for l in items
            if l.commit_date < l.receipt_date
        }
        expected = Counter(
            o.order_priority
            for o in orders
            if "1994-01-01" <= o.order_date < "1994-07-01"
            and o.order_key in late_orders
        )
        result = tpch_q4.run(
            local_engine(world),
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1994-01-01",
            date_max="1994-07-01",
        )
        assert dict(result.fetch()) == dict(expected)

    def test_q4_unnesting_off_agrees(self, world):
        kwargs = dict(
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1994-01-01",
            date_max="1994-07-01",
        )
        a = tpch_q4.run(SparkLikeEngine(dfs=world["dfs"]), **kwargs)
        b = tpch_q4.run(
            SparkLikeEngine(dfs=world["dfs"]),
            config=EmmaConfig(unnesting=False),
            **kwargs,
        )
        assert_bags_match(a, b)


class TestGroupMin:
    def test_backends_agree_and_match_oracle(self, world):
        rows = world["dfs"].get(world["tuples"]).records
        expected: dict = {}
        for r in rows:
            expected[r.key] = min(
                expected.get(r.key, r.value), r.value
            )
        result = run_everywhere(
            world, group_min, tuples_path=world["tuples"]
        )
        assert dict(result.fetch()) == expected

"""Tests for the Vec vector type."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.linalg import Vec

coords = st.lists(
    st.floats(
        min_value=-100, max_value=100, allow_nan=False
    ),
    min_size=1,
    max_size=4,
)


class TestArithmetic:
    def test_add_sub(self):
        assert Vec.of(1, 2) + Vec.of(3, 4) == Vec.of(4, 6)
        assert Vec.of(3, 4) - Vec.of(1, 2) == Vec.of(2, 2)

    def test_scalar_mul_div(self):
        assert 2 * Vec.of(1, 2) == Vec.of(2, 4)
        assert Vec.of(1, 2) * 2 == Vec.of(2, 4)
        assert Vec.of(2, 4) / 2 == Vec.of(1, 2)

    def test_radd_zero_enables_sum(self):
        vecs = [Vec.of(1, 0), Vec.of(2, 3)]
        assert sum(vecs) == Vec.of(3, 3)

    def test_zeros(self):
        assert Vec.zeros(3) == Vec.of(0, 0, 0)

    def test_unsupported_operand(self):
        with pytest.raises(TypeError):
            Vec.of(1) + 3


class TestGeometry:
    def test_dot_norm(self):
        assert Vec.of(3, 4).norm() == pytest.approx(5.0)
        assert Vec.of(1, 2).dot(Vec.of(3, 4)) == 11

    def test_distances(self):
        a, b = Vec.of(0, 0), Vec.of(3, 4)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert a.squared_distance_to(b) == pytest.approx(25.0)


class TestProtocol:
    def test_immutability(self):
        v = Vec.of(1)
        with pytest.raises(AttributeError):
            v.components = (2,)

    def test_hashable_and_eq(self):
        assert hash(Vec.of(1, 2)) == hash(Vec.of(1, 2))
        assert Vec.of(1) != Vec.of(2)
        assert Vec.of(1) != (1,)

    def test_len_iter_getitem(self):
        v = Vec.of(5, 6)
        assert len(v) == 2
        assert list(v) == [5.0, 6.0]
        assert v[1] == 6.0

    def test_repr(self):
        assert "Vec(" in repr(Vec.of(1.5))


@given(coords, coords)
def test_addition_commutes(a, b):
    n = min(len(a), len(b))
    va, vb = Vec(a[:n]), Vec(b[:n])
    assert va + vb == vb + va


@given(coords)
def test_norm_non_negative(a):
    assert Vec(a).norm() >= 0


@given(coords)
def test_distance_to_self_is_zero(a):
    v = Vec(a)
    assert v.distance_to(v) == pytest.approx(0.0, abs=1e-9)


@given(coords, st.floats(min_value=0.1, max_value=10, allow_nan=False))
def test_scaling_scales_norm(a, k):
    v = Vec(a)
    assert (k * v).norm() == pytest.approx(k * v.norm(), rel=1e-6)

"""Documentation quality gates.

Every public module, class, and function in the library must carry a
docstring, the repository-level documents must exist and reference
real artifacts, and every ``python`` snippet in README.md and
docs/observability.md must actually execute — the snippets of a doc
are concatenated in order into one script (later blocks may reuse
earlier definitions) and run as a subprocess, because ``@parallelize``
lifts from real source files.
"""

import importlib
import inspect
import os
import pkgutil
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).parent.parent


def _public_modules():
    out = []
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        out.append(info.name)
    return sorted(out)


MODULES = _public_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                if _overrides_documented_base(obj, meth_name):
                    continue  # inherits the base method's docs
                missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: undocumented {missing}"


def _overrides_documented_base(cls, meth_name: str) -> bool:
    for base in cls.__mro__[1:]:
        base_meth = base.__dict__.get(meth_name)
        if base_meth is not None:
            doc = getattr(base_meth, "__doc__", None)
            return bool(doc and doc.strip())
    return False


class TestRepositoryDocuments:
    def test_required_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / doc
            assert path.exists(), doc
            assert len(path.read_text()) > 1000, doc

    def test_design_lists_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for marker in (
            "Table 1",
            "Figure 4",
            "Figure 5",
            "kmeans",
            "tpch",
        ):
            assert marker in design, marker

    def test_experiments_reports_paper_vs_measured(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "paper" in text
        assert "DNF" in text
        assert "5/5 rows match" in text

    def test_readme_commands_reference_real_paths(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert (REPO_ROOT / "examples" / "quickstart.py").exists()
        assert "pytest tests/" in readme
        assert "pytest benchmarks/ --benchmark-only" in readme

    def test_readme_links_observability_doc(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/observability.md" in readme
        assert (REPO_ROOT / "docs" / "observability.md").exists()

    def test_benchmarks_cover_every_paper_artifact(self):
        bench_dir = REPO_ROOT / "benchmarks"
        names = {p.name for p in bench_dir.glob("test_*.py")}
        assert "test_table1_applicability.py" in names
        assert "test_figure4_workflow.py" in names
        assert "test_figure5_group_fusion.py" in names
        assert "test_sec52_iterative.py" in names
        assert "test_sec52_tpch.py" in names


# ---------------------------------------------------------------------------
# Executable snippets
# ---------------------------------------------------------------------------

SNIPPET_DOCS = (
    "README.md",
    "docs/observability.md",
    "docs/parallel_execution.md",
    "docs/columnar.md",
    "docs/out_of_core.md",
    "docs/optimizer.md",
    "docs/serving.md",
)


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)\n```", text, flags=re.S)


@pytest.mark.parametrize("doc", SNIPPET_DOCS)
def test_doc_python_snippets_execute(doc, tmp_path):
    text = (REPO_ROOT / doc).read_text()
    blocks = _python_blocks(text)
    assert blocks, f"{doc} has no ```python snippets"
    script = tmp_path / "snippets.py"
    script.write_text("\n\n".join(blocks) + "\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if p
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, (
        f"{doc} snippets failed:\n{proc.stdout[-2000:]}\n"
        f"{proc.stderr[-2000:]}"
    )

"""Tests for the domain APIs layered on DataBag (paper §7 future work)."""

import math
from collections import defaultdict

import pytest

from repro.api import (
    DataBag,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
)
from repro.engines.dfs import SimulatedDFS
from repro.extensions.graph import (
    VertexProgram,
    _superstep_loop,
    max_label_program,
    pagerank_program,
    run_vertex_program,
)
from repro.extensions.linalg import (
    MatrixEntry,
    VectorEntry,
    _matvec,
    matvec,
    power_iteration,
    vector_norm,
)
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank


@pytest.fixture(scope="module")
def world():
    dfs = SimulatedDFS()
    follower = graphs.stage_follower_graph(
        dfs, num_vertices=80, edges_per_vertex=3, seed=51
    )
    cc = "ext/cc"
    dfs.put(
        cc, graphs.generate_component_graph(60, num_components=3, seed=53)
    )
    return {"dfs": dfs, "follower": follower, "cc": cc}


def _local(world):
    engine = LocalEngine()
    engine.dfs = world["dfs"]
    return engine


class TestVertexPrograms:
    def test_pagerank_matches_handwritten_workload(self, world):
        n = 80
        via_api = run_vertex_program(
            pagerank_program(n),
            world["follower"],
            engine=_local(world),
            max_supersteps=5,
        )
        reference = pagerank.run(
            _local(world),
            graph_path=world["follower"],
            num_pages=n,
            max_iterations=5,
        )
        got = {s.id: s.value for s in via_api}
        want = {r.id: r.rank for r in reference}
        assert got.keys() == want.keys()
        for vid in got:
            assert got[vid] == pytest.approx(want[vid], rel=1e-12)

    @pytest.mark.parametrize(
        "engine_cls",
        [SparkLikeEngine, FlinkLikeEngine],
        ids=["spark", "flink"],
    )
    def test_backends_agree(self, world, engine_cls):
        n = 80
        oracle = run_vertex_program(
            pagerank_program(n),
            world["follower"],
            engine=_local(world),
            max_supersteps=4,
        )
        parallel = run_vertex_program(
            pagerank_program(n),
            world["follower"],
            engine=engine_cls(dfs=world["dfs"]),
            max_supersteps=4,
        )
        got = {s.id: s.value for s in parallel}
        for s in oracle:
            assert got[s.id] == pytest.approx(s.value, rel=1e-9)

    def test_connected_components_semi_naive(self, world):
        result = run_vertex_program(
            max_label_program(),
            world["cc"],
            engine=SparkLikeEngine(dfs=world["dfs"]),
            max_supersteps=100,
        )
        vertices = world["dfs"].get(world["cc"]).records
        parent = {v.id: v.id for v in vertices}

        def find(a):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for v in vertices:
            for nb in v.neighbors:
                parent[find(v.id)] = find(nb)
        expected_components = len({find(v.id) for v in vertices})
        assert (
            len({s.value for s in result}) == expected_components == 3
        )

    def test_generic_superstep_gets_fold_group_fusion(self):
        report = _superstep_loop.report()
        assert report.fold_group_fusion_applied

    def test_max_supersteps_bounds_non_semi_naive_runs(self, world):
        program = pagerank_program(80)
        engine = SparkLikeEngine(dfs=world["dfs"])
        run_vertex_program(
            program, world["follower"], engine=engine, max_supersteps=2
        )
        # Two supersteps -> bounded number of jobs (no runaway loop).
        assert engine.metrics.jobs_submitted < 20

    def test_custom_program(self, world):
        # Min-label propagation: same machinery, different fold.
        program = VertexProgram(
            init=lambda v: v.id,
            send=lambda s, _d: s.value,
            combine_zero=1 << 30,
            combine_lift=lambda m: m,
            combine_merge=min,
            apply=lambda s, label: label if label < s.value else None,
            semi_naive=True,
        )
        result = run_vertex_program(
            program, world["cc"], engine=_local(world), max_supersteps=100
        )
        labels_per_component: dict = defaultdict(set)
        for s in result:
            labels_per_component[s.value].add(s.id)
        assert len(labels_per_component) == 3
        # Each component's label is its minimum member id.
        for label, members in labels_per_component.items():
            assert label == min(members)


class TestLinalg:
    def _dense(self, rows):
        """rows: list of lists -> MatrixEntry bag."""
        return DataBag(
            MatrixEntry(i, j, v)
            for i, row in enumerate(rows)
            for j, v in enumerate(row)
            if v != 0
        )

    def _vec(self, values):
        return DataBag(
            VectorEntry(i, v) for i, v in enumerate(values) if v != 0
        )

    def test_matvec_matches_dense_computation(self):
        a = [[1.0, 2.0, 0.0], [0.0, 3.0, 4.0], [5.0, 0.0, 6.0]]
        x = [1.0, -1.0, 2.0]
        result = matvec(self._dense(a), self._vec(x))
        got = {e.index: e.value for e in result}
        for i, row in enumerate(a):
            expected = sum(v * x[j] for j, v in enumerate(row))
            assert got.get(i, 0.0) == pytest.approx(expected)

    def test_matvec_on_parallel_engine(self):
        a = self._dense([[2.0, 0.0], [1.0, 1.0]])
        x = self._vec([3.0, 4.0])
        local = matvec(a, x)
        spark = matvec(a, x, engine=SparkLikeEngine())
        assert {(e.index, e.value) for e in local} == {
            (e.index, e.value) for e in spark
        }

    def test_matvec_plan_is_join_plus_aggby(self):
        report = _matvec.report()
        assert report.fold_group_fusion_applied
        assert "EqJoin" in _matvec.explain()
        assert "AggBy" in _matvec.explain()

    def test_vector_norm(self):
        assert vector_norm(self._vec([3.0, 4.0])) == pytest.approx(5.0)

    def test_power_iteration_finds_dominant_eigenvector(self):
        # diag(5, 1): dominant eigenvector is e0.
        a = self._dense([[5.0, 0.0], [0.0, 1.0]])
        result = power_iteration(a, dimension=2, iterations=25)
        got = {e.index: e.value for e in result}
        assert abs(got[0]) == pytest.approx(1.0, abs=1e-6)
        assert abs(got.get(1, 0.0)) < 1e-6

    def test_power_iteration_symmetric_matrix(self):
        # [[2,1],[1,2]] has dominant eigenvector (1,1)/sqrt(2), λ=3.
        a = self._dense([[2.0, 1.0], [1.0, 2.0]])
        result = power_iteration(
            a, dimension=2, iterations=30, engine=FlinkLikeEngine()
        )
        got = {e.index: e.value for e in result}
        assert abs(got[0]) == pytest.approx(
            1 / math.sqrt(2), rel=1e-4
        )
        assert got[0] == pytest.approx(got[1], rel=1e-4)

"""Differential suite for memory-budgeted out-of-core execution.

The spill layer's contract mirrors the parallel backend's and the
columnar plane's: it is a *host-resource* mechanism, observably
irrelevant to the simulation.  For any workload — including one under
aggressive fault injection and mid-run budget squeezes — spill ``on``
(a tight driver memory budget) and ``off`` (unlimited), across serial,
threaded, and process-pool modes, must produce bit-identical results,
identical ``simulated_seconds``, and identical fault/recovery
schedules.  Only wall clock, IPC bytes, and the ``spill_*`` counters
may move.
"""

import pytest

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1

MODES = ("serial", "threads", "processes")

#: Driver budget tight enough to force real evictions on these
#: workloads, loose enough that pinned working sets still fit.
BUDGET = 16 * 1024

#: Metrics fields allowed to differ between variants: measured wall
#: clock, the parallel backend's own accounting, the columnar plane's
#: accounting, and the spill layer's own accounting.
_VARIANT_DEPENDENT = {
    "wall_clock_seconds",
    "parallel_tasks",
    "parallel_stages",
    "ipc_bytes_shipped",
    "ipc_bytes_returned",
    "kernels_rehydrated",
    "speculative_launches",
    "speculative_wins",
    "serial_fallbacks",
    "columnar_batches_built",
    "columnar_kernels",
    "columnar_fallbacks",
    "columnar_fallbacks_udf",
    "columnar_fallbacks_schema",
    "columnar_fallbacks_input",
    "columnar_blocks_shipped",
    "spill_bytes_written",
    "spill_bytes_read",
    "partitions_spilled",
    "partitions_reloaded",
    "external_merge_passes",
    "budget_evictions",
}


@pytest.fixture(scope="module")
def world():
    """Small staged datasets shared by every differential case."""
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=90)
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.05)
    return {
        "dfs": dfs,
        "graph": graph_path,
        "orders": orders_path,
        "lineitem": lineitem_path,
    }


def _engine(world, mode, fault_plan=None):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4),
        dfs=world["dfs"],
        execution_mode=mode,
        max_parallel_tasks=2,
        fault_plan=fault_plan,
        checkpoint_interval=2 if fault_plan else 0,
    )


def _config(budget, mode):
    return EmmaConfig(
        memory_budget=budget, execution_mode=mode, max_parallel_tasks=2
    )


def _invariant_metrics(engine) -> dict:
    """Every counter that must not depend on the execution variant."""
    return {
        name: value
        for name, value in vars(engine.metrics).items()
        if name not in _VARIANT_DEPENDENT
    }


def _run_matrix(
    world, algo, fault_plan=None, expect_spills=True, **params
):
    """Run ``algo`` under every (budget, mode); assert bit-identity.

    Results are compared by exact ``repr`` in collection order (not
    sorted): a spill round trip must reproduce record order and value
    types, not merely the same multiset.
    """
    outcomes = {}
    for budget in (0, BUDGET):
        for mode in MODES:
            engine = _engine(world, mode, fault_plan=fault_plan)
            result = algo.run(
                engine, config=_config(budget, mode), **params
            )
            records = (
                result.fetch() if hasattr(result, "fetch") else result
            )
            outcomes[(budget, mode)] = (
                [repr(r) for r in records],
                _invariant_metrics(engine),
                engine.metrics,
            )
    base_records, base_metrics, _ = outcomes[(0, "serial")]
    for key, (records, metrics, _raw) in outcomes.items():
        assert records == base_records, f"{key} diverged from baseline"
        assert metrics == base_metrics, f"{key} metrics diverged"
    # The matrix proves nothing if the budget never bit: workloads
    # with resident state (caches, hoisted loop invariants) must have
    # actually spilled.  Single-job workloads with nothing resident
    # (``expect_spills=False``) only prove the budget is harmless.
    if expect_spills:
        for mode in MODES:
            raw = outcomes[(BUDGET, mode)][2]
            assert raw.partitions_spilled > 0, f"{mode}: budget never bit"
            assert raw.spill_bytes_written > 0
    return outcomes


class TestWorkloadsBitIdentical:
    def test_pagerank(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        _run_matrix(
            world,
            pagerank,
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=4,
        )

    def test_tpch_q1(self, world):
        _run_matrix(
            world,
            tpch_q1,
            expect_spills=False,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )


class TestFaultedRunsBitIdentical:
    """Spill-on runs must draw the exact same fault schedules: spill
    I/O never advances the injector's task counter, and a spilled
    partition on a dead worker recovers through the same lineage path
    as a resident one."""

    def test_pagerank_under_aggressive_faults(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        outcomes = _run_matrix(
            world,
            pagerank,
            fault_plan=FaultPlan.aggressive(seed=17),
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=4,
        )
        _, metrics, _ = outcomes[(0, "serial")]
        assert metrics["tasks_retried"] > 0
        assert metrics["workers_lost"] > 0

    def test_tpch_q1_under_aggressive_faults(self, world):
        outcomes = _run_matrix(
            world,
            tpch_q1,
            fault_plan=FaultPlan.aggressive(seed=5),
            expect_spills=False,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )
        _, metrics, _ = outcomes[(0, "serial")]
        assert metrics["tasks_retried"] > 0


class TestMemorySqueezeChaos:
    """The MEMORY_SQUEEZE chaos event drops the budget mid-run; the
    squeeze must evict immediately and still change nothing observable."""

    def test_squeeze_is_invisible_and_actually_evicts(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        plan = FaultPlan.spill_pressure(budget=4096)
        outcomes = {}
        for mode in MODES:
            for squeezed in (False, True):
                engine = _engine(
                    world, mode, fault_plan=plan if squeezed else None
                )
                # checkpoint_interval must match across the pair: it
                # changes the job sequence.
                engine.checkpoint_interval = 2
                result = pagerank.run(
                    engine,
                    config=_config(0, mode),
                    graph_path=world["graph"],
                    num_pages=n,
                    max_iterations=4,
                )
                outcomes[(mode, squeezed)] = (
                    [repr(r) for r in result.fetch()],
                    engine.metrics,
                )
        base_records, _ = outcomes[("serial", False)]
        for (mode, squeezed), (records, metrics) in outcomes.items():
            assert records == base_records, f"{mode} diverged"
            if squeezed:
                # The squeeze plan also injects a crash, a straggler,
                # and a worker loss on top of the eviction pressure.
                assert metrics.partitions_spilled > 0, mode
                assert metrics.tasks_retried > 0
                assert metrics.workers_lost > 0
        clean = outcomes[("serial", False)][1].simulated_seconds
        squeezed_runs = {
            outcomes[(mode, True)][1].simulated_seconds
            for mode in MODES
        }
        # All squeezed runs agree with each other (the squeeze itself
        # charges simulated time only through its injected faults).
        assert len(squeezed_runs) == 1
        assert squeezed_runs.pop() > clean

"""Tests for engine-level execution semantics: laziness, thunks,
caching policies, partition pulling, budgets, and stateful bags."""

from dataclasses import dataclass, replace

import pytest

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    Const,
    Ref,
)
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.costmodel import CostModel
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.engines.stateful import DistributedStatefulBag
from repro.errors import EmmaError, SimulatedTimeout
from repro.lowering.combinators import (
    CBagRef,
    CFold,
    CMap,
    CSource,
    ScalarFn,
)


@dataclass(frozen=True)
class S:
    id: int
    value: int


def _spark(**kw) -> SparkLikeEngine:
    kw.setdefault("cluster", ClusterConfig(num_workers=4))
    return SparkLikeEngine(**kw)


def _flink(**kw) -> FlinkLikeEngine:
    kw.setdefault("cluster", ClusterConfig(num_workers=4))
    return FlinkLikeEngine(**kw)


def _inc_plan(input_node) -> CMap:
    return CMap(
        fn=ScalarFn(("x",), BinOp("+", Ref("x"), Const(1))),
        input=input_node,
    )


class TestLazinessAndLineage:
    def test_defer_does_not_execute(self):
        eng = _spark()
        eng.defer(_inc_plan(CBagRef(name="xs")), {"xs": DataBag([1])})
        assert eng.metrics.jobs_submitted == 0

    def test_uncached_lineage_recomputed_per_consuming_job(self):
        eng = _spark()
        eng.dfs.put("src", list(range(50)))
        deferred = eng.defer(
            _inc_plan(CSource(path=Const("src"), fmt=Const(None))), {}
        )
        fold = CFold(spec=AlgebraSpec("sum"), input=CBagRef(name="d"))
        eng.run_scalar(fold, {"d": deferred})
        after_one = eng.metrics.dfs_read_bytes
        eng.run_scalar(fold, {"d": deferred})
        # The source was re-read: lineage recomputation, not caching.
        assert eng.metrics.dfs_read_bytes == 2 * after_one

    def test_forced_thunk_memoizes(self):
        eng = _spark()
        eng.dfs.put("src", list(range(10)))
        deferred = eng.defer(
            _inc_plan(CSource(path=Const("src"), fmt=Const(None))), {}
        )
        first = deferred.force_local()
        reads = eng.metrics.dfs_read_bytes
        second = deferred.force_local()
        assert second is first
        assert eng.metrics.dfs_read_bytes == reads

    def test_cached_bag_not_recomputed(self):
        eng = _spark()
        eng.dfs.put("src", list(range(50)))
        deferred = eng.defer(
            _inc_plan(CSource(path=Const("src"), fmt=Const(None))), {}
        )
        handle = eng.cache(deferred)
        reads = eng.metrics.dfs_read_bytes
        fold = CFold(spec=AlgebraSpec("sum"), input=CBagRef(name="d"))
        assert eng.run_scalar(fold, {"d": handle}) == sum(
            range(1, 51)
        )
        eng.run_scalar(fold, {"d": handle})
        # In-memory cache: no further DFS reads.
        assert eng.metrics.dfs_read_bytes == reads

    def test_env_snapshot_at_defer_time(self):
        eng = _spark()
        env = {"xs": DataBag([1])}
        deferred = eng.defer(_inc_plan(CBagRef(name="xs")), env)
        env["xs"] = DataBag([100])  # later driver rebinding
        assert deferred.force_local() == [2]


class TestCachePolicies:
    def test_spark_cache_lives_in_memory(self):
        eng = _spark()
        handle = eng.cache(DataBag([1, 2, 3]))
        assert handle.storage == "memory"
        assert eng.metrics.dfs_write_bytes == 0

    def test_flink_cache_spills_to_dfs(self):
        eng = _flink()
        handle = eng.cache(DataBag([1, 2, 3]))
        assert handle.storage == "dfs"
        assert eng.metrics.dfs_write_bytes > 0
        assert eng.dfs.exists(handle.dfs_path)

    def test_flink_cache_reads_charge_dfs_every_use(self):
        eng = _flink()
        handle = eng.cache(DataBag(list(range(100))))
        writes = eng.metrics.dfs_write_bytes
        fold = CFold(spec=AlgebraSpec("sum"), input=CBagRef(name="d"))
        eng.run_scalar(fold, {"d": handle})
        first_reads = eng.metrics.dfs_read_bytes
        eng.run_scalar(fold, {"d": handle})
        assert eng.metrics.dfs_read_bytes == 2 * first_reads
        assert eng.metrics.dfs_write_bytes == writes

    def test_cache_with_partition_key_sets_partitioner(self):
        eng = _spark()
        key = ScalarFn(("s",), Attr(Ref("s"), "id"))
        handle = eng.cache(
            DataBag([S(1, 10), S(2, 20)]), partition_key=key
        )
        assert handle.bag.partitioner is not None
        assert handle.bag.partitioner.matches(
            key, handle.bag.num_partitions
        )

    def test_partitioned_cache_elides_downstream_shuffle(self):
        eng = _spark()
        key = ScalarFn(("s",), Attr(Ref("s"), "id"))
        handle = eng.cache(
            DataBag([S(i, i) for i in range(40)]), partition_key=key
        )
        shuffled_before = eng.metrics.shuffle_bytes
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        ex = JobExecutor(eng, {"d": handle}, job)
        bag = ex._exec_bag_ref(CBagRef(name="d"))
        ex.shuffle_by_key(bag, key)
        assert eng.metrics.shuffle_bytes == shuffled_before


class TestBudget:
    def test_simulated_timeout(self):
        eng = _spark(time_budget=0.0001)
        fold = CFold(
            spec=AlgebraSpec("sum"), input=CBagRef(name="xs")
        )
        with pytest.raises(SimulatedTimeout):
            eng.run_scalar(fold, {"xs": DataBag(range(1000))})

    def test_budget_not_exceeded_passes(self):
        eng = _spark(time_budget=1e9)
        fold = CFold(
            spec=AlgebraSpec("sum"), input=CBagRef(name="xs")
        )
        assert eng.run_scalar(fold, {"xs": DataBag([1])}) == 1


class TestDistributedStateful:
    def _state(self, eng, n=10) -> DistributedStatefulBag:
        return DistributedStatefulBag(
            eng, [S(i, i * 10) for i in range(n)]
        )

    def test_bag_snapshot_is_partitioned_by_key(self):
        eng = _spark()
        state = self._state(eng)
        bag = state.bag()
        assert bag.partitioner is not None
        assert bag.count() == 10

    def test_update_returns_delta(self):
        eng = _spark()
        state = self._state(eng, 4)
        delta = state.update(
            lambda s: replace(s, value=0) if s.id % 2 == 0 else None
        )
        collected = eng.collect(delta)
        assert sorted(s.id for s in collected) == [0, 2]
        assert state.count() == 4

    def test_update_with_messages_routes_by_key(self):
        eng = _spark()
        state = self._state(eng, 4)
        delta = state.update_with_messages(
            DataBag([S(1, 5), S(99, 1)]),
            lambda s, m: replace(s, value=s.value + m.value),
        )
        collected = eng.collect(delta)
        assert [s.id for s in collected] == [1]

    def test_duplicate_keys_rejected(self):
        eng = _spark()
        with pytest.raises(EmmaError, match="duplicate"):
            DistributedStatefulBag(eng, [S(1, 1), S(1, 2)])

    def test_key_preservation_enforced(self):
        eng = _spark()
        state = self._state(eng, 2)
        with pytest.raises(EmmaError, match="preserve"):
            state.update(lambda s: S(s.id + 1, 0))

    def test_aligned_messages_do_not_shuffle(self):
        eng = _spark()
        state = self._state(eng, 20)
        # Messages taken from the state's own snapshot are aligned.
        snapshot = state.bag()
        before = eng.metrics.shuffle_bytes
        state.update_with_messages(
            snapshot, lambda s, m: replace(s, value=s.value + 1)
        )
        assert eng.metrics.shuffle_bytes == before


class TestEngineDifferences:
    def test_flink_broadcast_costs_more(self):
        from repro.comprehension.exprs import FoldCall

        body = FoldCall(Ref("lookup"), AlgebraSpec("max"))
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("+", Ref("x"), body)),
            input=CBagRef(name="xs"),
        )
        env = {
            "xs": DataBag([1, 2, 3]),
            "lookup": DataBag(list(range(100))),
        }
        spark, flink = _spark(), _flink()
        DataBag(spark.collect(spark.defer(plan, dict(env))))
        DataBag(flink.collect(flink.defer(plan, dict(env))))
        assert (
            flink.metrics.broadcast_bytes
            > 3 * spark.metrics.broadcast_bytes
        )

    def test_spark_charges_task_scheduling_on_the_driver(self):
        assert SparkLikeEngine.task_overhead > FlinkLikeEngine.task_overhead

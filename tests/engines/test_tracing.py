"""Unit tests for the runtime tracing layer (:mod:`repro.engines.tracing`).

The load-bearing properties: tracing is off by default and costs one
attribute load when off; a traced run returns an identical result; the
per-job span durations sum *exactly* to ``metrics.simulated_seconds``
(the trace is the cost model, not a sample of it); fault and recovery
events land on the span where they occurred; and both export formats
(JSON lines, ``chrome://tracing``) round-trip through ``json``.
"""

import json

from repro.comprehension.exprs import (
    BinOp,
    Compare,
    Const,
    FilterCall,
    Lambda,
    MapCall,
    Ref,
)
from repro.comprehension.normalize import normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import CRASH, FaultEvent, FaultPlan
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.engines.tracing import (
    RuntimeTracer,
    TracedRun,
    TraceSpan,
    render_span_tree,
)
from repro.lowering.rules import lower
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.graphs import stage_follower_graph
from repro.workloads.pagerank import pagerank


def _plan_add_one():
    expr = MapCall(
        FilterCall(
            Ref("xs"),
            Lambda(("x",), Compare(">", Ref("x"), Const(-1))),
        ),
        Lambda(("x",), BinOp("+", Ref("x"), Const(1))),
    )
    return lower(normalize(resugar(expr)))


def _run_plan(engine, n=40):
    env = {"xs": DataBag(list(range(n)))}
    return sorted(engine.collect(engine.defer(_plan_add_one(), env)))


def _traced_pagerank(num_vertices=60, iterations=3, **config_kwargs):
    dfs = SimulatedDFS()
    engine = SparkLikeEngine(dfs=dfs)
    path = stage_follower_graph(dfs, num_vertices=num_vertices, seed=7)
    traced = pagerank.run(
        engine,
        config=EmmaConfig(tracing=True, **config_kwargs),
        graph_path=path,
        num_pages=num_vertices,
        max_iterations=iterations,
    )
    return engine, traced


class TestTracerBasics:
    def test_disabled_by_default(self):
        engine = SparkLikeEngine()
        assert engine.tracer is None
        assert _run_plan(engine) == list(range(1, 41))

    def test_enable_tracing_is_idempotent(self):
        engine = SparkLikeEngine()
        tracer = engine.enable_tracing()
        assert engine.enable_tracing() is tracer
        engine.disable_tracing()
        assert engine.tracer is None

    def test_config_flag_installs_tracer(self):
        engine = SparkLikeEngine()
        engine.apply_runtime_config(EmmaConfig(tracing=True))
        assert isinstance(engine.tracer, RuntimeTracer)

    def test_traced_run_matches_untraced(self):
        plain = SparkLikeEngine()
        traced = SparkLikeEngine()
        traced.enable_tracing()
        assert _run_plan(plain) == _run_plan(traced)
        assert (
            plain.metrics.simulated_seconds
            == traced.metrics.simulated_seconds
        )

    def test_operator_spans_carry_row_and_byte_counts(self):
        engine = SparkLikeEngine()
        tracer = engine.enable_tracing()
        _run_plan(engine)
        ops = [s for s in tracer.spans() if s.cat == "operator"]
        assert ops, "no operator spans collected"
        for span in ops:
            assert span.attrs["rows_out"] >= 0
            assert span.attrs["bytes_out"] >= 0
            assert span.attrs["compute_seconds"] >= 0


class TestJobSpanInvariant:
    def test_job_durations_sum_to_metrics_total(self):
        engine, traced = _traced_pagerank()
        total = sum(job.dur for job in traced.job_spans())
        assert abs(total - engine.metrics.simulated_seconds) < 1e-9

    def test_invariant_holds_on_flink_like(self):
        engine = FlinkLikeEngine(cluster=ClusterConfig(num_workers=4))
        tracer = engine.enable_tracing()
        _run_plan(engine, n=80)
        total = sum(job.dur for job in tracer.job_spans())
        assert abs(total - engine.metrics.simulated_seconds) < 1e-9

    def test_spans_nest_within_their_job(self):
        engine, traced = _traced_pagerank()
        for job in traced.job_spans():
            end = job.ts + job.dur
            for child in job.walk():
                assert child.ts >= job.ts - 1e-9
                assert child.ts + child.dur <= end + 1e-9

    def test_traced_run_shape(self):
        engine, traced = _traced_pagerank(num_vertices=40, iterations=2)
        assert isinstance(traced, TracedRun)
        assert traced.trace.cat == "run"
        assert traced.compile_trace is not None
        assert traced.metrics is engine.metrics
        ranks = {r.id for r in traced.result}
        assert ranks == set(range(40))


class TestRuntimeEvents:
    def test_fault_events_attach_to_spans(self):
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4),
            fault_plan=FaultPlan(
                events=(FaultEvent(CRASH, task=2),)
            ),
        )
        tracer = engine.enable_tracing()
        _run_plan(engine)
        events = [
            e for s in tracer.spans() for e in s.events
        ]
        crash = [e for e in events if e.name == "fault:crash"]
        assert crash and crash[0].attrs["task"] == 2
        assert engine.metrics.tasks_retried >= 1

    def test_shuffle_and_broadcast_spans_on_pagerank(self):
        # Planner off: with partitioning-aware planning the broadcast
        # is replaced by an elided/hoisted repartition join.
        engine, traced = _traced_pagerank(physical_planning=False)
        stages = [
            s for s in traced.trace.walk() if s.cat == "stage"
        ]
        names = {s.name for s in stages}
        assert "Shuffle" in names
        assert "Broadcast" in names
        shuffle = next(s for s in stages if s.name == "Shuffle")
        assert shuffle.attrs["shuffle_bytes"] > 0

    def test_stateful_update_spans(self):
        engine, traced = _traced_pagerank()
        updates = [
            s
            for s in traced.trace.walk()
            if s.name == "StatefulUpdateWithMessages"
        ]
        assert len(updates) == 3  # one per iteration
        for span in updates:
            assert span.attrs["keys"] == 60
            assert span.attrs["updated"] >= 0


class TestExports:
    def test_jsonl_round_trips(self):
        engine, traced = _traced_pagerank(num_vertices=40, iterations=2)
        lines = traced.tracer.to_jsonl().splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows, "empty jsonl export"
        roots = [r for r in rows if r["depth"] == 0]
        assert roots[0]["name"] == "run pagerank"
        assert all("dur" in r and "ts" in r for r in rows)

    def test_chrome_document_is_well_formed(self):
        engine, traced = _traced_pagerank(num_vertices=40, iterations=2)
        doc = traced.tracer.to_chrome()
        json.dumps(doc)  # must serialize
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == 1
        # One metadata event names the process.
        assert any(e["ph"] == "M" for e in events)
        # Jobs get distinct tids so nested jobs never overlap.
        job_tids = {
            e["tid"] for e in complete if e["cat"] == "job"
        }
        assert len(job_tids) == len(traced.job_spans())

    def test_write_helpers(self, tmp_path):
        engine, traced = _traced_pagerank(num_vertices=40, iterations=2)
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        traced.write_chrome(chrome)
        traced.write_jsonl(jsonl)
        assert json.loads(chrome.read_text())["traceEvents"]
        assert jsonl.read_text().strip()

    def test_render_span_tree(self):
        span = TraceSpan(name="job 0", cat="job", ts=0.0, dur=1.0)
        span.children.append(
            TraceSpan(name="Map", cat="operator", ts=0.1, dur=0.5)
        )
        text = render_span_tree(span)
        assert "job 0 [job]" in text
        assert "  Map [operator]" in text

"""Tests for the dataflow executor: semantics + cost accounting."""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    Compare,
    Const,
    Ref,
)
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.costmodel import CostModel
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import EngineError, SimulatedMemoryError
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CFlatMap,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CSemiJoin,
    CSource,
    CUnion,
    ScalarFn,
)


@dataclass(frozen=True)
class R:
    k: int
    v: int


def engine(**kwargs) -> SparkLikeEngine:
    kwargs.setdefault("cluster", ClusterConfig(num_workers=4))
    return SparkLikeEngine(**kwargs)


def run_bag(eng, plan, env) -> DataBag:
    return DataBag(eng.collect(eng.defer(plan, env)))


def key_k() -> ScalarFn:
    return ScalarFn(("x",), Attr(Ref("x"), "k"))


class TestElementwiseOperators:
    def test_map(self):
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("*", Ref("x"), Const(2))),
            input=CBagRef(name="xs"),
        )
        eng = engine()
        assert run_bag(eng, plan, {"xs": DataBag([1, 2])}) == DataBag(
            [2, 4]
        )
        assert eng.metrics.udf_invocations == 2

    def test_flat_map(self):
        plan = CFlatMap(
            fn=ScalarFn(("x",), Attr(Ref("x"), "items")),
            input=CBagRef(name="xs"),
        )

        @dataclass(frozen=True)
        class W:
            items: tuple

        result = run_bag(
            engine(), plan, {"xs": DataBag([W((1, 2)), W(())])}
        )
        assert result == DataBag([1, 2])

    def test_filter_preserves_partitioner(self):
        eng = engine()
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        ex = JobExecutor(eng, {}, job)
        shuffled = ex.shuffle_by_key(
            ex.parallelize_local([R(1, 1), R(2, 2)]), key_k()
        )
        filtered = ex._exec_filter(
            CFilter(
                predicate=ScalarFn(
                    ("x",), Compare(">", Attr(Ref("x"), "v"), Const(0))
                ),
                input=_env_ref(ex, shuffled),
            )
        )
        assert filtered.partitioner is not None

    def test_map_destroys_partitioner(self):
        eng = engine()
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        ex = JobExecutor(eng, {}, job)
        shuffled = ex.shuffle_by_key(
            ex.parallelize_local([R(1, 1)]), key_k()
        )
        mapped = ex._exec_map(
            CMap(
                fn=ScalarFn.identity("x"),
                input=_env_ref(ex, shuffled),
            )
        )
        assert mapped.partitioner is None


class TestShuffleAndJoin:
    def test_shuffle_elided_when_already_partitioned(self):
        eng = engine()
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        ex = JobExecutor(eng, {}, job)
        bag = ex.parallelize_local([R(i, i) for i in range(20)])
        first = ex.shuffle_by_key(bag, key_k())
        before = eng.metrics.shuffle_bytes
        second = ex.shuffle_by_key(first, key_k())
        assert second is first
        assert eng.metrics.shuffle_bytes == before

    def test_repartition_join(self):
        eng = engine()
        # Force the repartition strategy with a tiny threshold.
        eng.broadcast_join_threshold = 0
        plan = CEqJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
        )
        env = {
            "xs": DataBag([R(1, 10), R(2, 20), R(1, 11)]),
            "ys": DataBag([R(1, 100), R(3, 300)]),
        }
        result = run_bag(eng, plan, env)
        assert result == DataBag(
            [(R(1, 10), R(1, 100)), (R(1, 11), R(1, 100))]
        )
        assert eng.metrics.shuffle_bytes > 0

    def test_broadcast_join_same_result_no_shuffle(self):
        eng = engine()
        eng.broadcast_join_threshold = 10**9
        plan = CEqJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
        )
        env = {
            "xs": DataBag([R(1, 10), R(2, 20)]),
            "ys": DataBag([R(1, 100)]),
        }
        result = run_bag(eng, plan, env)
        assert result == DataBag([(R(1, 10), R(1, 100))])
        assert eng.metrics.shuffle_bytes == 0
        assert eng.metrics.broadcast_bytes > 0

    def test_semi_join(self):
        eng = engine()
        plan = CSemiJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
        )
        env = {
            "xs": DataBag([R(1, 10), R(2, 20), R(1, 11)]),
            "ys": DataBag([R(1, 0), R(1, 1)]),
        }
        # Left multiplicities preserved; right duplicates irrelevant.
        assert run_bag(eng, plan, env) == DataBag(
            [R(1, 10), R(1, 11)]
        )

    def test_anti_join(self):
        plan = CSemiJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
            anti=True,
        )
        env = {
            "xs": DataBag([R(1, 10), R(2, 20)]),
            "ys": DataBag([R(1, 0)]),
        }
        assert run_bag(engine(), plan, env) == DataBag([R(2, 20)])

    def test_semi_join_repartition_path(self):
        eng = engine()
        eng.broadcast_join_threshold = 0
        plan = CSemiJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
        )
        env = {
            "xs": DataBag([R(i, i) for i in range(10)]),
            "ys": DataBag([R(2, 0), R(4, 0)]),
        }
        assert run_bag(eng, plan, env) == DataBag([R(2, 2), R(4, 4)])

    def test_cross(self):
        plan = CCross(
            left=CBagRef(name="xs"), right=CBagRef(name="ys")
        )
        env = {"xs": DataBag([1, 2]), "ys": DataBag(["a"])}
        assert run_bag(engine(), plan, env) == DataBag(
            [(1, "a"), (2, "a")]
        )


class TestGroupingAndAggregation:
    def test_group_by_builds_grp_records(self):
        plan = CGroupBy(key=key_k(), input=CBagRef(name="xs"))
        env = {"xs": DataBag([R(1, 10), R(1, 11), R(2, 20)])}
        groups = run_bag(engine(), plan, env)
        by_key = {g.key: g.values for g in groups}
        assert by_key[1] == DataBag([R(1, 10), R(1, 11)])
        assert by_key[2] == DataBag([R(2, 20)])

    def test_group_by_memory_bound(self):
        eng = engine(
            cost=CostModel(memory_per_worker=64),  # absurdly small
            memory_budget=0,  # no spill tier: the raise must survive
        )
        plan = CGroupBy(key=key_k(), input=CBagRef(name="xs"))
        env = {"xs": DataBag([R(1, i) for i in range(100)])}
        with pytest.raises(SimulatedMemoryError):
            run_bag(eng, plan, env)

    def test_agg_by_computes_product_algebra(self):
        from repro.comprehension.exprs import Lambda

        plan = CAggBy(
            key=key_k(),
            specs=(
                AlgebraSpec("count"),
                AlgebraSpec(
                    "min_by",
                    (Lambda(("x",), Attr(Ref("x"), "v")),),
                ),
            ),
            input=CBagRef(name="xs"),
        )
        env = {"xs": DataBag([R(1, 10), R(1, 5), R(2, 20)])}
        result = {
            r.key: r.aggs for r in run_bag(engine(), plan, env)
        }
        assert result[1] == (2, R(1, 5))
        assert result[2] == (1, R(2, 20))

    def test_agg_by_shuffles_only_partials(self):
        eng_agg = engine()
        eng_grp = engine()
        records = DataBag([R(i % 3, i) for i in range(300)])
        agg_plan = CAggBy(
            key=key_k(),
            specs=(AlgebraSpec("count"),),
            input=CBagRef(name="xs"),
        )
        grp_plan = CGroupBy(key=key_k(), input=CBagRef(name="xs"))
        run_bag(eng_agg, agg_plan, {"xs": records})
        run_bag(eng_grp, grp_plan, {"xs": records})
        assert (
            eng_agg.metrics.shuffle_bytes
            < eng_grp.metrics.shuffle_bytes / 5
        )

    def test_agg_by_aligned_input_skips_shuffle(self):
        eng = engine()
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        ex = JobExecutor(eng, {}, job)
        shuffled = ex.shuffle_by_key(
            ex.parallelize_local([R(i % 5, i) for i in range(50)]),
            key_k(),
        )
        before = eng.metrics.shuffle_bytes
        result = ex._exec_agg_by(
            CAggBy(
                key=key_k(),
                specs=(AlgebraSpec("count"),),
                input=_env_ref(ex, shuffled),
            )
        )
        assert eng.metrics.shuffle_bytes == before
        assert sum(r.aggs[0] for p in result.partitions for r in p) == 50

    def test_distinct(self):
        plan = CDistinct(input=CBagRef(name="xs"))
        env = {"xs": DataBag([1, 1, 2, 3, 3, 3])}
        assert run_bag(engine(), plan, env) == DataBag([1, 2, 3])

    def test_union_and_minus(self):
        union = CUnion(
            left=CBagRef(name="a"), right=CBagRef(name="b")
        )
        minus = CMinus(
            left=CBagRef(name="a"), right=CBagRef(name="b")
        )
        env = {"a": DataBag([1, 1, 2]), "b": DataBag([1, 3])}
        assert run_bag(engine(), union, env) == DataBag([1, 1, 2, 1, 3])
        assert run_bag(engine(), minus, env) == DataBag([1, 2])


class TestFoldsAndSources:
    def test_global_fold(self):
        plan = CFold(
            spec=AlgebraSpec("sum"), input=CBagRef(name="xs")
        )
        eng = engine()
        assert eng.run_scalar(plan, {"xs": DataBag([1, 2, 3])}) == 6
        assert eng.metrics.driver_collect_bytes > 0

    def test_fold_empty_bag(self):
        plan = CFold(
            spec=AlgebraSpec("min"), input=CBagRef(name="xs")
        )
        assert engine().run_scalar(plan, {"xs": DataBag([])}) is None

    def test_source_reads_dfs_and_charges(self):
        eng = engine()
        eng.dfs.put("data/x", [1, 2, 3])
        plan = CSource(path=Const("data/x"), fmt=Const(None))
        assert run_bag(eng, plan, {}) == DataBag([1, 2, 3])
        assert eng.metrics.dfs_read_bytes > 0

    def test_unbound_bag_ref_raises(self):
        plan = CBagRef(name="nope")
        with pytest.raises(EngineError, match="nope"):
            run_bag(engine(), plan, {})


class TestBroadcastUdfs:
    def test_free_bag_variable_broadcast(self):
        # UDF referencing a driver bag: the engine must broadcast it.
        from repro.comprehension.exprs import FoldCall

        body = FoldCall(Ref("lookup"), AlgebraSpec("max"))
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("+", Ref("x"), body)),
            input=CBagRef(name="xs"),
        )
        eng = engine()
        env = {
            "xs": DataBag([1, 2]),
            "lookup": DataBag([10, 30]),
        }
        assert run_bag(eng, plan, env) == DataBag([31, 32])
        assert eng.metrics.broadcast_bytes > 0

    def test_broadcast_counted_once_per_job(self):
        from repro.comprehension.exprs import FoldCall

        body = FoldCall(Ref("lookup"), AlgebraSpec("max"))
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("+", Ref("x"), body)),
            input=CMap(
                fn=ScalarFn(("x",), BinOp("+", Ref("x"), body)),
                input=CBagRef(name="xs"),
            ),
        )
        eng = engine()
        env = {"xs": DataBag([1]), "lookup": DataBag([5])}
        run_bag(eng, plan, env)
        # One broadcast despite two UDFs referencing the same bag.
        W = eng.cluster.num_workers
        assert eng.metrics.records_broadcast == 1 * W

    def test_scalar_free_variables_are_closed_over(self):
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("+", Ref("x"), Ref("k"))),
            input=CBagRef(name="xs"),
        )
        eng = engine()
        env = {"xs": DataBag([1]), "k": 41}
        assert run_bag(eng, plan, env) == DataBag([42])
        assert eng.metrics.broadcast_bytes == 0


def _env_ref(executor, bag):
    """A CBagRef whose env entry is a prepared PartitionedBag."""
    name = f"__fixed_{id(bag)}__"
    executor.env[name] = bag
    return CBagRef(name=name)

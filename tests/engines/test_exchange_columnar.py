"""Differential suite for the columnar exchange plane.

The exchange plane extends the columnar contract through the shuffle
operators: partitioning, hash join, and group-by may evaluate their
key UDFs as *columns* and scatter whole batches, but the plane must
stay observably irrelevant.  For any workload — including one under
aggressive fault injection and a tight driver memory budget — exchange
``on`` and ``off``, across serial, threaded, and process-pool modes,
must produce bit-identical results, identical ``simulated_seconds``,
and identical fault/recovery schedules.  Only wall clock, IPC bytes,
and the columnar/exchange counters themselves may move.
"""

import pytest

from repro.api import DataBag, parallelize
from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

MODES = ("serial", "threads", "processes")
PLANES = ("off", "on")

#: Metrics fields allowed to differ between variants: the measured
#: wall clock, the parallel backend's own accounting, the columnar
#: plane's accounting, the exchange plane's own accounting (this
#: suite's axis *is* the exchange knob), and — for the budget matrix —
#: the spill layer's accounting.
_VARIANT_DEPENDENT = {
    "wall_clock_seconds",
    "parallel_tasks",
    "parallel_stages",
    "ipc_bytes_shipped",
    "ipc_bytes_returned",
    "kernels_rehydrated",
    "speculative_launches",
    "speculative_wins",
    "serial_fallbacks",
    "columnar_batches_built",
    "columnar_kernels",
    "columnar_fallbacks",
    "columnar_fallbacks_udf",
    "columnar_fallbacks_schema",
    "columnar_fallbacks_input",
    "columnar_shuffles",
    "columnar_joins",
    "columnar_groups",
    "columnar_blocks_shipped",
    "spill_bytes_written",
    "spill_bytes_read",
    "partitions_spilled",
    "partitions_reloaded",
    "external_merge_passes",
    "budget_evictions",
}


@parallelize
def skew_join(xs: DataBag, ys: DataBag):
    """A two-table equi-join on a deliberately skewed tuple key."""
    pairs = ((x, y) for x in xs for y in ys if x[0] == y[0])
    return [(p[0][0], p[0][1] + p[1][1]) for p in pairs]


#: Skewed build/probe inputs: every tenth left row keeps its own key,
#: the rest pile onto key 3 — one shuffle bucket dominates.
SKEW_LEFT = [(i % 7 if i % 10 == 0 else 3, float(i)) for i in range(400)]
SKEW_RIGHT = [(i % 7, float(i) * 0.5) for i in range(300)]


@pytest.fixture(scope="module")
def world():
    """Small staged datasets shared by every differential case."""
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=48)
    big_graph_path = graphs.stage_follower_graph(
        dfs, num_vertices=2000, seed=11
    )
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.05)
    return {
        "dfs": dfs,
        "graph": graph_path,
        "big_graph": big_graph_path,
        "orders": orders_path,
        "lineitem": lineitem_path,
    }


def _engine(world, mode, fault_plan=None):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4),
        dfs=world["dfs"],
        execution_mode=mode,
        max_parallel_tasks=2,
        fault_plan=fault_plan,
    )


def _config(exchange, mode, budget=0):
    return EmmaConfig(
        columnar_exchange=exchange,
        execution_mode=mode,
        max_parallel_tasks=2,
        memory_budget=budget,
    )


def _invariant_metrics(engine) -> dict:
    """Every counter that must not depend on the execution variant."""
    return {
        name: value
        for name, value in vars(engine.metrics).items()
        if name not in _VARIANT_DEPENDENT
    }


def _engagement(metrics) -> int:
    return (
        metrics.columnar_shuffles
        + metrics.columnar_joins
        + metrics.columnar_groups
    )


def _run_matrix(
    world, algo, fault_plan=None, budget=0, engages=True, **params
):
    """Run ``algo`` under every (exchange, mode); assert bit-identity.

    Results are compared by exact ``repr`` in collection order (not
    sorted): the columnar scatter and batched probe must reproduce the
    row plane's record order and value types, not merely the same
    multiset.  With ``engages`` the matrix additionally pins that the
    exchange plane actually ran on every ``on`` variant — the
    bit-identity half proves nothing if the plane never engaged — and
    that shuffle payloads really shipped as typed blocks in processes
    mode.
    """
    outcomes = {}
    for plane in PLANES:
        for mode in MODES:
            engine = _engine(world, mode, fault_plan=fault_plan)
            result = algo.run(
                engine,
                config=_config(plane, mode, budget=budget),
                **params,
            )
            records = (
                result.fetch() if hasattr(result, "fetch") else result
            )
            outcomes[(plane, mode)] = (
                [repr(r) for r in records],
                _invariant_metrics(engine),
                engine.metrics,
            )
    base_records, base_metrics, _ = outcomes[("off", "serial")]
    for key, (records, metrics, raw) in outcomes.items():
        assert records == base_records, f"{key} diverged from baseline"
        assert metrics == base_metrics, f"{key} metrics diverged"
        if key[0] == "off":
            assert _engagement(raw) == 0, f"{key} engaged while off"
        elif engages:
            assert _engagement(raw) > 0, f"{key}: plane never engaged"
    if engages:
        on_serial = outcomes[("on", "serial")][2]
        on_threads = outcomes[("on", "threads")][2]
        on_procs = outcomes[("on", "processes")][2]
        # Engagement is decided driver-side from partition content, so
        # the counts themselves are mode-invariant.
        assert _engagement(on_serial) == _engagement(on_threads)
        assert _engagement(on_serial) == _engagement(on_procs)
        # Blocks only "ship" across a process boundary.
        assert on_procs.columnar_blocks_shipped > 0
        assert on_serial.columnar_blocks_shipped == 0
        assert on_threads.columnar_blocks_shipped == 0
    return outcomes


class TestWorkloadsBitIdentical:
    def test_pagerank(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        outcomes = _run_matrix(
            world,
            pagerank,
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=3,
        )
        # PageRank's join key dereferences a nested attribute
        # (``_fm[0].id``) — legitimately outside the scalar subset —
        # so engagement comes from the fused aggregations' partial
        # shuffles, not the join.
        raw = outcomes[("on", "serial")][2]
        assert raw.columnar_shuffles > 0
        assert raw.columnar_joins == 0

    def test_tpch_q1(self, world):
        outcomes = _run_matrix(
            world,
            tpch_q1,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )
        assert outcomes[("on", "serial")][2].columnar_shuffles > 0

    def test_tpch_q4(self, world):
        outcomes = _run_matrix(
            world,
            tpch_q4,
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1995-01-01",
            date_max="1996-07-01",
        )
        # Q4's semi-join and aggregation both shuffle columnar.
        assert outcomes[("on", "serial")][2].columnar_shuffles >= 2

    def test_skewed_key_join(self, world):
        outcomes = _run_matrix(
            world,
            skew_join,
            xs=DataBag(SKEW_LEFT),
            ys=DataBag(SKEW_RIGHT),
        )
        raw = outcomes[("on", "serial")][2]
        assert raw.columnar_joins > 0
        assert raw.columnar_shuffles > 0


class TestFaultedRunsBitIdentical:
    """Columnar exchange never touches the fault injector: bucket
    scatter and batched probes charge the same driver-side CPU in the
    same partition order, so injected chaos must land identically on
    both planes, in every mode."""

    def test_pagerank_under_aggressive_faults(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        outcomes = _run_matrix(
            world,
            pagerank,
            fault_plan=FaultPlan.aggressive(seed=23),
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=3,
        )
        _, metrics, _ = outcomes[("off", "serial")]
        assert metrics["tasks_retried"] > 0
        assert metrics["workers_lost"] > 0

    def test_tpch_q4_under_aggressive_faults(self, world):
        outcomes = _run_matrix(
            world,
            tpch_q4,
            fault_plan=FaultPlan.aggressive(seed=5),
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1995-01-01",
            date_max="1996-07-01",
        )
        _, metrics, _ = outcomes[("off", "serial")]
        assert metrics["tasks_retried"] > 0

    def test_skewed_join_under_aggressive_faults(self, world):
        _run_matrix(
            world,
            skew_join,
            fault_plan=FaultPlan.aggressive(seed=7),
            xs=DataBag(SKEW_LEFT),
            ys=DataBag(SKEW_RIGHT),
        )


class TestBudgetedRunsBitIdentical:
    """A 256 KiB driver budget forces shuffle state — including
    columnar batches — through the spill store; reloads go through the
    same lineage path as resident partitions, so the squeeze plus the
    exchange plane together must still change nothing observable."""

    BUDGET = 256 * 1024

    def test_pagerank_under_budget(self, world):
        n = len(world["dfs"].get(world["big_graph"]).records)
        outcomes = _run_matrix(
            world,
            pagerank,
            budget=self.BUDGET,
            graph_path=world["big_graph"],
            num_pages=n,
            max_iterations=4,
        )
        # Prove the budget actually bit on the exchange-on runs: the
        # matrix is vacuous if nothing ever spilled and reloaded.
        for mode in MODES:
            raw = outcomes[("on", mode)][2]
            assert raw.partitions_spilled > 0, f"{mode}: never spilled"
            assert raw.partitions_reloaded > 0, f"{mode}: never reloaded"
            assert raw.columnar_shuffles > 0

    def test_budgeted_matches_unbudgeted(self, world):
        """The budget matrix baseline is itself budgeted; pin that the
        budgeted exchange-on run also matches a run with no budget at
        all (full transitivity of the invariance contract)."""
        n = len(world["dfs"].get(world["big_graph"]).records)
        results = {}
        for plane, budget in (("off", 0), ("on", self.BUDGET)):
            engine = _engine(world, "serial")
            result = pagerank.run(
                engine,
                config=_config(plane, "serial", budget=budget),
                graph_path=world["big_graph"],
                num_pages=n,
                max_iterations=4,
            )
            results[plane] = (
                [repr(r) for r in result.fetch()],
                engine.metrics.simulated_seconds,
            )
        assert results["on"] == results["off"]


class TestExplainMarkers:
    """The static half of the selection is rendered by ``explain()``."""

    def test_q4_marks_columnar_exchanges(self):
        text = tpch_q4.explain(_config("on", "serial"))
        assert "exchange=columnar" in text

    def test_pagerank_marks_the_row_join(self):
        text = pagerank.explain(_config("on", "serial"))
        # The rank-contribution join stays on the row plane (nested
        # attribute key) while the aggregations exchange columnar.
        assert "exchange=row" in text
        assert "exchange=columnar" in text

    def test_off_config_leaves_plans_unmarked(self):
        text = tpch_q4.explain(_config("off", "serial"))
        assert "exchange=" not in text

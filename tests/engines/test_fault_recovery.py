"""Unit tests for deterministic fault injection and recovery.

Covers the :mod:`repro.engines.faults` scheduler (determinism, retry
charging, blacklisting, permanent failure), lineage-based recomputation
of lost cached partitions, driver-replica recovery, and stateful-bag
checkpoint/replay restore.
"""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    BinOp,
    Compare,
    Const,
    FilterCall,
    Lambda,
    MapCall,
    Ref,
)
from repro.comprehension.normalize import normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.faults import (
    CRASH,
    STRAGGLER,
    WORKER_LOSS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.engines.stateful import DistributedStatefulBag
from repro.errors import EngineError, TaskFailedError
from repro.lowering.rules import lower


def _plan_add_one():
    expr = MapCall(
        FilterCall(
            Ref("xs"),
            Lambda(("x",), Compare(">", Ref("x"), Const(-1))),
        ),
        Lambda(("x",), BinOp("+", Ref("x"), Const(1))),
    )
    return lower(normalize(resugar(expr)))


def _engine(cls=SparkLikeEngine, **kwargs):
    return cls(cluster=ClusterConfig(num_workers=4), **kwargs)


def _run(engine, n=40):
    plan = _plan_add_one()
    env = {"xs": DataBag(list(range(n)))}
    return sorted(engine.collect(engine.defer(plan, env)))


EXPECTED = sorted(x + 1 for x in range(40))


class TestFaultPlan:
    def test_uniform_is_deterministic_and_in_range(self):
        plan = FaultPlan(seed=5)
        draws = [plan.uniform(CRASH, t) for t in range(200)]
        assert draws == [plan.uniform(CRASH, t) for t in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Different kinds and seeds decorrelate.
        assert draws != [
            plan.uniform(STRAGGLER, t) for t in range(200)
        ]
        assert draws != [
            FaultPlan(seed=6).uniform(CRASH, t) for t in range(200)
        ]

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(EngineError, match="unknown fault kind"):
            FaultEvent("meteor")

    def test_aggressive_guarantees_every_kind(self):
        plan = FaultPlan.aggressive()
        kinds = {e.kind for e in plan.events}
        assert kinds == {CRASH, WORKER_LOSS, STRAGGLER}

    def test_backoff_total_is_exponential(self):
        policy = RetryPolicy(backoff_seconds=0.01, backoff_factor=2.0)
        assert policy.backoff_total(3) == pytest.approx(
            0.01 + 0.02 + 0.04
        )


class TestInjectorScheduling:
    def test_same_plan_same_schedule(self):
        plan = FaultPlan.aggressive(seed=23)
        runs = []
        for _ in range(2):
            engine = _engine(fault_plan=plan)
            result = _run(engine)
            m = engine.metrics
            runs.append(
                (
                    result,
                    m.tasks_retried,
                    m.workers_lost,
                    m.stragglers_injected,
                    m.simulated_seconds,
                )
            )
        assert runs[0] == runs[1]

    def test_crash_retries_charge_time(self):
        clean = _engine()
        _run(clean)
        faulty = _engine(
            fault_plan=FaultPlan(events=(FaultEvent(CRASH, task=2),))
        )
        assert _run(faulty) == EXPECTED
        assert faulty.metrics.tasks_retried == 1
        assert faulty.metrics.recovery_seconds > 0
        assert (
            faulty.metrics.simulated_seconds
            > clean.metrics.simulated_seconds
        )

    def test_straggler_charges_delay_only(self):
        faulty = _engine(
            fault_plan=FaultPlan(
                events=(FaultEvent(STRAGGLER, task=2),),
                straggler_delay_seconds=0.25,
            )
        )
        assert _run(faulty) == EXPECTED
        assert faulty.metrics.stragglers_injected == 1
        assert faulty.metrics.tasks_retried == 0

    def test_task_exhausting_retries_fails_permanently(self):
        engine = _engine(
            fault_plan=FaultPlan(
                events=(FaultEvent(CRASH, task=2, attempts=4),)
            ),
            retry_policy=RetryPolicy(max_attempts=4),
        )
        with pytest.raises(TaskFailedError) as info:
            _run(engine)
        site = info.value.failure_site()
        assert site["task"] == 2
        assert "partition" in site and "worker" in site
        assert info.value.metrics is not None

    def test_repeated_failures_blacklist_worker(self):
        # The job runs 8 tasks (4 partitions x filter, map); tasks 1
        # and 5 are partition 1's, both on worker 1.
        events = tuple(
            FaultEvent(CRASH, task=t) for t in (1, 5)
        )
        engine = _engine(
            fault_plan=FaultPlan(events=events),
            retry_policy=RetryPolicy(blacklist_after=2),
        )
        assert _run(engine) == EXPECTED
        assert engine.metrics.workers_blacklisted == 1
        faults = engine.faults
        (bad,) = faults.blacklisted
        # The blacklisted worker's tasks land on a healthy neighbour.
        assert faults.effective_worker(bad) != bad

    def test_blacklist_fraction_cap(self):
        policy = RetryPolicy(
            blacklist_after=1, max_blacklisted_fraction=0.25
        )
        events = tuple(
            FaultEvent(CRASH, task=t) for t in range(0, 32, 2)
        )
        engine = _engine(
            fault_plan=FaultPlan(events=events), retry_policy=policy
        )
        assert _run(engine) == EXPECTED
        # A 4-worker cluster at fraction 0.25 blacklists at most one.
        assert len(engine.faults.blacklisted) <= 1

    def test_all_blacklisted_raises(self):
        injector = FaultInjector(FaultPlan(), RetryPolicy(), 2)
        injector.blacklisted = {0, 1}
        with pytest.raises(EngineError, match="blacklisted"):
            injector.effective_worker(0)

    def test_suspend_disables_injection(self):
        engine = _engine(
            fault_plan=FaultPlan(events=(FaultEvent(CRASH, task=0),))
        )
        with engine.faults.suspend():
            _run(engine)
        assert engine.metrics.tasks_retried == 0
        # The event is still pending once injection resumes.
        assert not engine.faults._fired_events

    def test_probabilistic_budgets_are_respected(self):
        plan = FaultPlan(
            task_crash_prob=1.0,
            max_task_crashes=3,
            straggler_prob=1.0,
            max_stragglers=2,
        )
        engine = _engine(fault_plan=plan)
        assert _run(engine) == EXPECTED
        assert engine.faults.injected_crashes == 3
        assert engine.faults.injected_stragglers == 2


class TestLineageRecovery:
    def test_worker_loss_recomputes_from_lineage(self):
        engine = _engine()
        plan = _plan_add_one()
        env = {"xs": DataBag(list(range(40)))}
        handle = engine.cache(engine.defer(plan, env))
        assert handle.lineage_root is not None
        job = engine._new_job()
        engine.on_worker_lost(1, job)
        engine._finish_job(job)
        assert handle.lost_partitions
        assert sorted(engine.collect(handle)) == EXPECTED
        assert not handle.lost_partitions
        assert engine.metrics.partitions_recomputed > 0
        assert engine.metrics.recovery_seconds > 0

    def test_recovery_preserves_partition_layout(self):
        engine = _engine()
        plan = _plan_add_one()
        env = {"xs": DataBag(list(range(40)))}
        handle = engine.cache(engine.defer(plan, env))
        before = [list(p) for p in handle.bag.partitions]
        job = engine._new_job()
        engine.on_worker_lost(2, job)
        engine._recover_handle(handle, job)
        engine._finish_job(job)
        assert [list(p) for p in handle.bag.partitions] == before

    def test_driver_replica_recovery_without_lineage(self):
        engine = _engine()
        records = [(i, i * i) for i in range(30)]
        handle = engine.cache(records)
        assert handle.lineage_root is None
        assert handle.recovery_partitions is not None
        job = engine._new_job()
        engine.on_worker_lost(0, job)
        engine._finish_job(job)
        assert sorted(engine.collect(handle)) == sorted(records)
        assert engine.metrics.partitions_recomputed > 0

    def test_dfs_backed_cache_survives_worker_loss(self):
        engine = _engine(FlinkLikeEngine)
        handle = engine.cache(list(range(30)))
        assert handle.storage == "dfs"
        assert handle.mark_lost(1, engine.cluster.num_workers) == []
        job = engine._new_job()
        engine.on_worker_lost(1, job)
        engine._finish_job(job)
        assert not handle.lost_partitions
        assert sorted(engine.collect(handle)) == list(range(30))
        assert engine.metrics.partitions_recomputed == 0

    def test_unrecoverable_handle_raises(self):
        from repro.engines.base import BagHandle
        from repro.engines.cluster import PartitionedBag

        engine = _engine()
        handle = BagHandle(
            engine, PartitionedBag([[1], [2]]), "memory"
        )
        handle.lost_partitions = {0}
        with pytest.raises(EngineError, match="neither lineage"):
            engine._recover_handle(handle, engine._new_job())


@dataclass(frozen=True)
class KV:
    key: int
    value: int


def _bump(e: KV) -> KV:
    return KV(e.key, e.value + 1)


class TestStatefulCheckpointing:
    def _updated_state(self, interval, updates=6, lose_after=5):
        engine = _engine(checkpoint_interval=interval)
        state = DistributedStatefulBag(
            engine, [KV(i, 0) for i in range(32)]
        )
        for _ in range(lose_after):
            state.update(_bump)
        job = engine._new_job()
        state.on_worker_lost(1, job)
        engine._finish_job(job)
        for _ in range(updates - lose_after):
            state.update(_bump)
        return engine, state

    def test_restore_is_exact(self):
        engine, state = self._updated_state(interval=0)
        values = {e.key: e.value for e in state.bag().collect()}
        assert values == {i: 6 for i in range(32)}
        assert engine.metrics.checkpoint_restores == 1
        assert engine.metrics.state_updates_replayed > 0

    def test_interval_checkpoints_bound_replay(self):
        no_ckpt, _ = self._updated_state(interval=0)
        with_ckpt, state = self._updated_state(interval=2)
        assert with_ckpt.metrics.checkpoints_written > 0
        # Checkpoint at update 4 truncates the log: the restore after
        # update 5 replays one logged update per lost partition instead
        # of all five — the point of interval checkpointing.
        assert (
            with_ckpt.metrics.state_updates_replayed
            < no_ckpt.metrics.state_updates_replayed
        )
        values = {e.key: e.value for e in state.bag().collect()}
        assert values == {i: 6 for i in range(32)}

    def test_worker_loss_during_update_is_transparent(self):
        engine = _engine(
            fault_plan=FaultPlan(
                events=(FaultEvent(WORKER_LOSS, task=2),)
            ),
            checkpoint_interval=2,
        )
        state = DistributedStatefulBag(
            engine, [KV(i, 0) for i in range(32)]
        )
        for _ in range(4):
            state.update(_bump)
        values = {e.key: e.value for e in state.bag().collect()}
        assert values == {i: 4 for i in range(32)}
        assert engine.metrics.workers_lost == 1
        assert engine.metrics.checkpoint_restores == 1

    def test_delta_handles_survive_worker_loss(self):
        engine = _engine()
        state = DistributedStatefulBag(
            engine, [KV(i, 0) for i in range(32)]
        )
        delta = state.update(_bump)
        expected = sorted(
            (e.key, e.value) for e in delta.bag.records()
        )
        job = engine._new_job()
        engine.on_worker_lost(2, job)
        engine._finish_job(job)
        recovered = sorted(
            (e.key, e.value) for e in engine.collect(delta)
        )
        assert recovered == expected

"""Differential suite for the columnar batch data plane.

The contract of :mod:`repro.engines.columnar` mirrors the parallel
backend's: the execution *plane* is observably irrelevant.  For any
workload — including one under aggressive fault injection — columnar
``on`` and ``off``, across serial, threaded, and process-pool modes,
must produce bit-identical results, identical ``simulated_seconds``,
and identical fault/recovery schedules.  Only wall clock, IPC bytes,
and the columnar counters themselves may move.
"""

import pytest

from repro.api import DataBag, parallelize
from repro.engines.cluster import ClusterConfig
from repro.engines.columnar import HAS_NUMPY
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import datagen, graphs
from repro.workloads.kmeans import initial_centroids, kmeans
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

MODES = ("serial", "threads", "processes")
PLANES = ("off", "on")

#: Metrics fields allowed to differ between variants: the measured
#: wall clock, the parallel backend's own accounting, and the columnar
#: plane's own accounting.
_VARIANT_DEPENDENT = {
    "wall_clock_seconds",
    "parallel_tasks",
    "parallel_stages",
    "ipc_bytes_shipped",
    "ipc_bytes_returned",
    "kernels_rehydrated",
    "speculative_launches",
    "speculative_wins",
    "serial_fallbacks",
    "columnar_batches_built",
    "columnar_kernels",
    "columnar_fallbacks",
    "columnar_fallbacks_udf",
    "columnar_fallbacks_schema",
    "columnar_fallbacks_input",
    "columnar_blocks_shipped",
}


@parallelize
def scan_chain(xs: DataBag):
    """A scan-heavy fused chain squarely in the vectorizable subset."""
    ys = [(x * 2.0 + 1.0, x * x) for x in xs if x > 4.0]
    zs = [y[0] + y[1] / 2.0 for y in ys if y[0] < 150.0]
    return zs


@parallelize
def row_only_chain(xs: DataBag):
    """A chain the selection rule must keep on the row plane."""
    ys = [y for x in xs for y in [x, x + 1.0]]
    return [y * 2.0 for y in ys if y > 3.0]


@pytest.fixture(scope="module")
def world():
    """Small staged datasets shared by every differential case."""
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=48)
    points_path = datagen.stage_points(dfs, n=90, centers=3, dim=2)
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.05)
    return {
        "dfs": dfs,
        "graph": graph_path,
        "points": points_path,
        "orders": orders_path,
        "lineitem": lineitem_path,
    }


def _engine(world, mode, fault_plan=None):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4),
        dfs=world["dfs"],
        execution_mode=mode,
        max_parallel_tasks=2,
        fault_plan=fault_plan,
    )


def _config(plane, mode):
    return EmmaConfig(
        columnar=plane, execution_mode=mode, max_parallel_tasks=2
    )


def _invariant_metrics(engine) -> dict:
    """Every counter that must not depend on the execution variant."""
    return {
        name: value
        for name, value in vars(engine.metrics).items()
        if name not in _VARIANT_DEPENDENT
    }


def _run_matrix(world, algo, fault_plan=None, **params):
    """Run ``algo`` under every (plane, mode); assert bit-identity.

    Results are compared by exact ``repr`` in collection order (not
    sorted): the columnar round-trip must reproduce the row plane's
    record order and value types, not merely the same multiset.
    """
    outcomes = {}
    for plane in PLANES:
        for mode in MODES:
            engine = _engine(world, mode, fault_plan=fault_plan)
            result = algo.run(
                engine, config=_config(plane, mode), **params
            )
            records = (
                result.fetch() if hasattr(result, "fetch") else result
            )
            outcomes[(plane, mode)] = (
                [repr(r) for r in records],
                _invariant_metrics(engine),
                engine.metrics,
            )
    base_records, base_metrics, _ = outcomes[("off", "serial")]
    for key, (records, metrics, _raw) in outcomes.items():
        assert records == base_records, f"{key} diverged from baseline"
        assert metrics == base_metrics, f"{key} metrics diverged"
    return outcomes


class TestWorkloadsBitIdentical:
    def test_pagerank(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        _run_matrix(
            world,
            pagerank,
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=3,
        )

    def test_kmeans(self, world):
        init = initial_centroids(
            world["dfs"].get(world["points"]).records, 3
        )
        _run_matrix(
            world,
            kmeans,
            points_path=world["points"],
            initial=init,
            epsilon=1e-6,
            max_iterations=4,
        )

    def test_tpch_q1(self, world):
        _run_matrix(
            world,
            tpch_q1,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )

    def test_tpch_q4(self, world):
        _run_matrix(
            world,
            tpch_q4,
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1995-01-01",
            date_max="1996-07-01",
        )


class TestFaultedRunsBitIdentical:
    """Fault schedules draw from the monotone task counter, which the
    driver advances in partition order after each stage — so injected
    chaos must land identically on both planes, in every mode."""

    def test_pagerank_under_aggressive_faults(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        outcomes = _run_matrix(
            world,
            pagerank,
            fault_plan=FaultPlan.aggressive(seed=23),
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=3,
        )
        _, metrics, _ = outcomes[("off", "serial")]
        assert metrics["tasks_retried"] > 0
        assert metrics["workers_lost"] > 0

    def test_tpch_q1_under_aggressive_faults(self, world):
        outcomes = _run_matrix(
            world,
            tpch_q1,
            fault_plan=FaultPlan.aggressive(seed=5),
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )
        _, metrics, _ = outcomes[("off", "serial")]
        assert metrics["tasks_retried"] > 0


class TestColumnarPlaneEngages:
    """The matrix above proves nothing if the columnar plane never ran;
    this pins that the synthetic scan chain actually vectorizes."""

    DATA = [float(i) for i in range(200)]

    def _run(self, plane, mode):
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4),
            execution_mode=mode,
            max_parallel_tasks=2,
        )
        out = scan_chain.run(
            engine, config=_config(plane, mode), xs=DataBag(self.DATA)
        )
        return [repr(r) for r in out.fetch()], engine.metrics

    @pytest.mark.parametrize("mode", MODES)
    def test_vector_kernel_runs(self, mode):
        rows_off, m_off = self._run("off", mode)
        rows_on, m_on = self._run("on", mode)
        assert rows_on == rows_off
        assert m_off.columnar_kernels == 0
        assert m_off.columnar_batches_built == 0
        assert m_on.columnar_kernels > 0
        assert m_on.columnar_batches_built > 0
        assert m_on.simulated_seconds == m_off.simulated_seconds
        assert m_on.element_ops == m_off.element_ops
        assert m_on.udf_invocations == m_off.udf_invocations

    def test_auto_plane_follows_numpy(self):
        rows, metrics = self._run("auto", "serial")
        if HAS_NUMPY:
            assert metrics.columnar_kernels > 0
        else:
            assert metrics.columnar_kernels == 0

    def test_explain_annotates_planes(self):
        on = _config("on", "serial")
        assert "| columnar" in scan_chain.explain(on)
        assert "| row" in row_only_chain.explain(on)
        trace = row_only_chain.explain(on, trace=True)
        assert "flat-map requires row-at-a-time emission" in trace

    def test_row_chain_still_bit_identical(self):
        engine_off = SparkLikeEngine()
        engine_on = SparkLikeEngine()
        bag = DataBag(self.DATA)
        out_off = row_only_chain.run(
            engine_off, config=_config("off", "serial"), xs=bag
        )
        out_on = row_only_chain.run(
            engine_on, config=_config("on", "serial"), xs=bag
        )
        assert [repr(r) for r in out_on.fetch()] == [
            repr(r) for r in out_off.fetch()
        ]
        assert (
            engine_on.metrics.simulated_seconds
            == engine_off.metrics.simulated_seconds
        )

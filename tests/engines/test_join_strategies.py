"""Tests for the JIT join-strategy decision and its observability.

Paper §4.2.1: after unnesting, "the dataflow compiler can then decide
whether to use a broadcast or a re-partition strategy in order to
evaluate the join node at runtime."  The engines make that decision
from the build side's *measured* size against the engine threshold, and
record it in the metrics.
"""

from dataclasses import dataclass

from repro.comprehension.exprs import Attr, Ref
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.sparklike import SparkLikeEngine
from repro.lowering.combinators import (
    CBagRef,
    CEqJoin,
    CSemiJoin,
    ScalarFn,
)


@dataclass(frozen=True)
class R:
    k: int
    payload: str


def key() -> ScalarFn:
    return ScalarFn(("x",), Attr(Ref("x"), "k"))


def _engine(threshold: int) -> SparkLikeEngine:
    engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=4))
    engine.broadcast_join_threshold = threshold
    return engine


def _run(engine, plan, env):
    return DataBag(engine.collect(engine.defer(plan, env)))


BIG = DataBag([R(i % 10, "x" * 50) for i in range(200)])
SMALL = DataBag([R(i, "y") for i in range(5)])


class TestEqJoinStrategy:
    def _plan(self):
        return CEqJoin(
            kx=key(),
            ky=key(),
            left=CBagRef(name="big"),
            right=CBagRef(name="small"),
        )

    def test_small_build_side_broadcasts(self):
        engine = _engine(threshold=1 << 20)
        _run(engine, self._plan(), {"big": BIG, "small": SMALL})
        assert engine.metrics.broadcast_joins == 1
        assert engine.metrics.repartition_joins == 0

    def test_large_build_side_repartitions(self):
        engine = _engine(threshold=1)
        _run(engine, self._plan(), {"big": BIG, "small": SMALL})
        assert engine.metrics.repartition_joins == 1
        assert engine.metrics.broadcast_joins == 0

    def test_both_strategies_agree_on_the_answer(self):
        env = {"big": BIG, "small": SMALL}
        a = _run(_engine(1 << 20), self._plan(), dict(env))
        b = _run(_engine(1), self._plan(), dict(env))
        assert a == b


class TestSemiJoinStrategy:
    def _plan(self):
        return CSemiJoin(
            kx=key(),
            ky=key(),
            left=CBagRef(name="big"),
            right=CBagRef(name="small"),
        )

    def test_strategy_recorded(self):
        engine = _engine(threshold=1 << 20)
        _run(engine, self._plan(), {"big": BIG, "small": SMALL})
        assert engine.metrics.broadcast_joins == 1
        engine = _engine(threshold=1)
        _run(engine, self._plan(), {"big": BIG, "small": SMALL})
        assert engine.metrics.repartition_joins == 1

    def test_strategies_agree_on_the_answer(self):
        env = {"big": BIG, "small": SMALL}
        a = _run(_engine(1 << 20), self._plan(), dict(env))
        b = _run(_engine(1), self._plan(), dict(env))
        assert a == b
        assert a == BIG.with_filter(lambda r: r.k < 5)

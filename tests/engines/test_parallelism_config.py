"""Tests for non-default parallelism and cross-policy cache behavior."""

from dataclasses import dataclass

from repro.comprehension.exprs import Attr, Ref
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.lowering.combinators import CBagRef, CMap, ScalarFn


@dataclass(frozen=True)
class R:
    k: int
    v: int


class TestOverPartitioning:
    """More partitions than workers (the common production setup)."""

    def _engine(self):
        return SparkLikeEngine(
            cluster=ClusterConfig(
                num_workers=2, default_parallelism=8
            )
        )

    def test_dataflow_uses_parallelism_partitions(self):
        engine = self._engine()
        plan = CMap(
            fn=ScalarFn.identity("x"), input=CBagRef(name="xs")
        )
        from repro.engines.executor import JobExecutor

        job = engine._new_job()
        bag = JobExecutor(
            engine, {"xs": DataBag(range(16))}, job
        ).run_bag(plan)
        assert bag.num_partitions == 8
        assert sorted(bag.collect()) == list(range(16))

    def test_worker_time_wraps_partitions_onto_workers(self):
        engine = self._engine()
        plan = CMap(
            fn=ScalarFn.identity("x"), input=CBagRef(name="xs")
        )
        deferred = engine.defer(plan, {"xs": DataBag(range(16))})
        engine.collect(deferred)
        # Work landed on both workers (partition i -> worker i % 2).
        assert engine.metrics.simulated_seconds > 0

    def test_results_identical_regardless_of_parallelism(self):
        narrow = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=2, default_parallelism=2)
        )
        wide = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=2, default_parallelism=16)
        )
        plan = CMap(
            fn=ScalarFn.identity("x"), input=CBagRef(name="xs")
        )
        env = {"xs": DataBag(range(40))}
        a = sorted(narrow.collect(narrow.defer(plan, dict(env))))
        b = sorted(wide.collect(wide.defer(plan, dict(env))))
        assert a == b


class TestFlinkPartitionedCache:
    def test_partitioning_survives_the_dfs_round_trip(self):
        engine = FlinkLikeEngine(
            cluster=ClusterConfig(num_workers=4)
        )
        key = ScalarFn(("r",), Attr(Ref("r"), "k"))
        handle = engine.cache(
            DataBag([R(i % 5, i) for i in range(40)]),
            partition_key=key,
        )
        assert handle.storage == "dfs"
        assert handle.bag.partitioner is not None
        # A consumer shuffle on the same key is elided even though the
        # cache lives on the DFS.
        from repro.engines.executor import JobExecutor

        job = engine._new_job()
        ex = JobExecutor(engine, {"d": handle}, job)
        before = engine.metrics.shuffle_bytes
        bag = ex._exec_bag_ref(CBagRef(name="d"))
        ex.shuffle_by_key(bag, key)
        assert engine.metrics.shuffle_bytes == before

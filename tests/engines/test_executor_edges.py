"""Edge-case and failure-injection tests for the dataflow executor."""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    Compare,
    Const,
    FoldCall,
    Lambda,
    ReadCall,
    Ref,
)
from repro.comprehension.ir import BAG, Comprehension, Generator, Guard
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import EngineError
from repro.lowering.combinators import (
    CBagRef,
    CCross,
    CEqJoin,
    CFilter,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CSemiJoin,
    CUnion,
    ScalarFn,
)


@dataclass(frozen=True)
class R:
    k: int
    v: int


def spark(**kw) -> SparkLikeEngine:
    kw.setdefault("cluster", ClusterConfig(num_workers=4))
    return SparkLikeEngine(**kw)


def run_bag(engine, plan, env):
    return DataBag(engine.collect(engine.defer(plan, env)))


def key_k() -> ScalarFn:
    return ScalarFn(("x",), Attr(Ref("x"), "k"))


class TestEmptyInputs:
    def test_join_with_empty_side(self):
        plan = CEqJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
        )
        env = {"xs": DataBag([R(1, 1)]), "ys": DataBag([])}
        assert run_bag(spark(), plan, env) == DataBag.empty()

    def test_cross_with_empty_side(self):
        plan = CCross(
            left=CBagRef(name="xs"), right=CBagRef(name="ys")
        )
        env = {"xs": DataBag([]), "ys": DataBag([1, 2])}
        assert run_bag(spark(), plan, env) == DataBag.empty()

    def test_semi_join_with_empty_right(self):
        plan = CSemiJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
        )
        env = {"xs": DataBag([R(1, 1)]), "ys": DataBag([])}
        assert run_bag(spark(), plan, env) == DataBag.empty()

    def test_anti_join_with_empty_right_keeps_everything(self):
        plan = CSemiJoin(
            kx=key_k(),
            ky=key_k(),
            left=CBagRef(name="xs"),
            right=CBagRef(name="ys"),
            anti=True,
        )
        env = {"xs": DataBag([R(1, 1), R(2, 2)]), "ys": DataBag([])}
        assert run_bag(spark(), plan, env) == env["xs"]

    def test_group_by_empty_input(self):
        plan = CGroupBy(key=key_k(), input=CBagRef(name="xs"))
        assert run_bag(spark(), plan, {"xs": DataBag([])}) == (
            DataBag.empty()
        )

    def test_union_with_mismatched_partition_counts(self):
        eng = spark()
        from repro.engines.cluster import PartitionedBag

        env = {
            "a": PartitionedBag([[1], [2], [3]]),
            "b": PartitionedBag([[10]]),
        }
        plan = CUnion(
            left=CBagRef(name="a"), right=CBagRef(name="b")
        )
        assert run_bag(eng, plan, env) == DataBag([1, 2, 3, 10])

    def test_minus_everything(self):
        plan = CMinus(
            left=CBagRef(name="a"), right=CBagRef(name="a")
        )
        assert run_bag(spark(), plan, {"a": DataBag([1, 1, 2])}) == (
            DataBag.empty()
        )


class TestErrorPaths:
    def test_missing_dfs_file(self):
        plan = ReadCall(path=Const("nope"), fmt=Const(None))
        from repro.lowering.rules import lower

        with pytest.raises(EngineError, match="no such DFS file"):
            run_bag(spark(), lower(plan), {})

    def test_udf_referencing_unbound_name(self):
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("+", Ref("x"), Ref("ghost"))),
            input=CBagRef(name="xs"),
        )
        with pytest.raises(EngineError, match="ghost"):
            run_bag(spark(), plan, {"xs": DataBag([1])})

    def test_fold_where_bag_expected(self):
        eng = spark()
        fold = CFold(
            spec=AlgebraSpec("sum"), input=CBagRef(name="xs")
        )
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        with pytest.raises(EngineError, match="bag"):
            JobExecutor(eng, {"xs": DataBag([1])}, job).run_bag(fold)

    def test_collect_of_non_bag_value(self):
        with pytest.raises(EngineError, match="collect"):
            spark().collect(42)

    def test_cache_of_non_bag_value(self):
        with pytest.raises(EngineError, match="cache"):
            spark().cache(42)

    def test_broadcast_of_non_bag_value(self):
        eng = spark()
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        with pytest.raises(EngineError, match="broadcast"):
            JobExecutor(eng, {}, job).broadcast_value(3.14)


class TestHoisting:
    def _exists_filter_with_inlined_read(self):
        # filter(x -> read("lookup").exists(y -> y == x)) — the read is
        # a closed bag subexpression inside the UDF body.
        predicate = Lambda(
            ("y",), Compare("==", Ref("y"), Ref("x"))
        )
        body = FoldCall(
            ReadCall(path=Const("lookup"), fmt=Const(None)),
            AlgebraSpec("exists", (predicate,)),
        )
        return CFilter(
            predicate=ScalarFn(("x",), body),
            input=CBagRef(name="xs"),
        )

    def test_closed_read_hoisted_and_broadcast(self):
        eng = spark()
        eng.dfs.put("lookup", [2, 4])
        plan = self._exists_filter_with_inlined_read()
        result = run_bag(eng, plan, {"xs": DataBag([1, 2, 3, 4])})
        assert result == DataBag([2, 4])
        assert eng.metrics.broadcast_bytes > 0
        # The read executed once per job, not once per element.
        lookup_bytes = eng.dfs.get("lookup").nbytes
        assert eng.metrics.dfs_read_bytes == lookup_bytes

    def test_parameter_dependent_comprehensions_not_hoisted(self):
        # A nested comprehension referencing the UDF parameter must
        # stay in place (and evaluate per element).
        inner = Comprehension(
            head=Ref("y"),
            qualifiers=(
                Generator("y", Ref("lookup")),
                Guard(Compare("<", Ref("y"), Ref("x"))),
            ),
            kind=BAG,
        )
        body = FoldCall(inner, AlgebraSpec("count"))
        plan = CMap(
            fn=ScalarFn(("x",), body), input=CBagRef(name="xs")
        )
        eng = spark()
        env = {"xs": DataBag([1, 3]), "lookup": DataBag([0, 2, 9])}
        assert run_bag(eng, plan, env) == DataBag([1, 2])


class TestEngineBudgetInteraction:
    def test_timeout_raised_only_after_job_completes(self):
        eng = spark(time_budget=1e-9)
        fold = CFold(
            spec=AlgebraSpec("sum"), input=CBagRef(name="xs")
        )
        from repro.errors import SimulatedTimeout

        with pytest.raises(SimulatedTimeout) as info:
            eng.run_scalar(fold, {"xs": DataBag(range(10))})
        assert info.value.simulated_seconds > info.value.budget_seconds

    def test_flink_group_memory_is_unbounded(self):
        eng = FlinkLikeEngine(
            cluster=ClusterConfig(num_workers=2),
        )
        # Absurdly small memory would kill the Spark-like engine; the
        # Flink-like sort-based grouping just spills.
        from repro.engines.costmodel import CostModel

        eng.cost = CostModel(memory_per_worker=8)
        plan = CGroupBy(key=key_k(), input=CBagRef(name="xs"))
        env = {"xs": DataBag([R(1, i) for i in range(50)])}
        groups = run_bag(eng, plan, env)
        assert len(groups) == 1

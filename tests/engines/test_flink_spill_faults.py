"""The Flink-like engine's disk-streaming grouping under chaos.

Flink's sort-based grouping (``group_spill_to_disk``) never hits the
memory wall — it degrades through local disk instead.  This suite pins
that property under aggressive fault injection and a driver memory
budget at once: skewed groupings complete where the Spark-like engine
raises ``SimulatedMemoryError``, and injected chaos never changes the
grouped results.
"""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import Attr, Ref
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.costmodel import CostModel
from repro.engines.faults import FaultPlan
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import SimulatedMemoryError
from repro.lowering.combinators import CBagRef, CGroupBy, ScalarFn


@dataclass(frozen=True)
class R:
    k: int
    v: int


#: Pareto-skewed keys: one giant group, a long tail — the Figure 5c
#: shape that makes un-fused grouping a memory problem on Spark.
SKEWED = [R(0 if i % 4 else i % 97, i) for i in range(600)]


def _group_plan() -> CGroupBy:
    return CGroupBy(
        key=ScalarFn(("x",), Attr(Ref("x"), "k")),
        input=CBagRef(name="xs"),
    )


def _expected() -> dict[int, list[int]]:
    out: dict[int, list[int]] = {}
    for r in SKEWED:
        out.setdefault(r.k, []).append(r.v)
    return {k: sorted(vs) for k, vs in out.items()}


def _flink(**kwargs) -> FlinkLikeEngine:
    kwargs.setdefault("cluster", ClusterConfig(num_workers=4))
    kwargs.setdefault("cost", CostModel(memory_per_worker=1024))
    return FlinkLikeEngine(**kwargs)


def _groups(eng) -> dict[int, list[int]]:
    out = eng.collect(eng.defer(_group_plan(), {"xs": DataBag(SKEWED)}))
    return {g.key: sorted(x.v for x in g.values) for g in out}


class TestStreamingGroupingSurvivesWhereSparkCannot:
    def test_spark_hits_the_memory_wall(self):
        eng = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4),
            cost=CostModel(memory_per_worker=1024),
            memory_budget=0,
        )
        with pytest.raises(SimulatedMemoryError):
            _groups(eng)

    def test_flink_streams_through_disk(self):
        eng = _flink()
        assert _groups(eng) == _expected()
        # Sort-based grouping never enters the external-merge path:
        # it already streams through local (simulated) disk.
        assert eng.metrics.external_merge_passes == 0


class TestChaosLeavesGroupsBitIdentical:
    @pytest.mark.parametrize("seed", [7, 17, 23])
    def test_aggressive_faults(self, seed):
        clean_eng = _flink()
        clean = _groups(clean_eng)
        chaos_eng = _flink(fault_plan=FaultPlan.aggressive(seed=seed))
        chaos = _groups(chaos_eng)
        assert repr(sorted(chaos.items())) == repr(sorted(clean.items()))
        assert chaos == _expected()
        m = chaos_eng.metrics
        assert m.tasks_retried > 0 or m.workers_lost > 0
        assert (
            m.simulated_seconds > clean_eng.metrics.simulated_seconds
        )

    def test_spill_pressure_plan(self):
        clean = _groups(_flink())
        eng = _flink(fault_plan=FaultPlan.spill_pressure(budget=2048))
        assert _groups(eng) == clean == _expected()
        # The squeeze reconfigured the driver budget mid-run.
        assert eng.spill.limit == 2048

    def test_driver_budget_composes_with_faults(self):
        # DFS-tier cache storage plus a driver budget plus chaos: the
        # grouping still completes and matches the clean run exactly.
        clean = _groups(_flink())
        eng = _flink(
            memory_budget=8 * 1024,
            fault_plan=FaultPlan.aggressive(seed=17),
        )
        assert _groups(eng) == clean == _expected()

"""Tests for partitioning-aware physical planning (PR 4).

Covers the interesting-properties pass end to end: shuffle-site
classification visible in ``explain()``, runtime elision and
loop-invariant hoisting with their metrics, the cost/statistics-driven
join strategy with adaptive switches, join/group outputs carrying key
partitioners, and — the headline guarantee — that none of it can ever
change a result: planner on and planner off are bit-identical, with
and without aggressive fault injection.
"""

from dataclasses import dataclass

import pytest

from repro.api import DataBag, EmmaConfig, parallelize
from repro.comprehension.exprs import Attr, Ref
from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.lowering.combinators import (
    CBagRef,
    CCross,
    CEqJoin,
    ScalarFn,
)
from repro.workloads.graphs import stage_follower_graph
from repro.workloads.pagerank import pagerank

PLAN_ON = EmmaConfig()
PLAN_OFF = EmmaConfig(physical_planning=False)


@dataclass(frozen=True)
class R:
    k: int
    payload: str


@dataclass(frozen=True)
class Keyed:
    k: int
    total: int


def _key() -> ScalarFn:
    return ScalarFn(("x",), Attr(Ref("x"), "k"))


def _pagerank(planning, num_vertices=120, iterations=4, faults=None):
    dfs = SimulatedDFS()
    engine = SparkLikeEngine(
        dfs=dfs,
        cluster=ClusterConfig(num_workers=4),
        fault_plan=faults,
    )
    engine.broadcast_join_threshold = 1024
    path = stage_follower_graph(dfs, num_vertices=num_vertices, seed=7)
    result = pagerank.run(
        engine,
        config=PLAN_ON if planning else PLAN_OFF,
        graph_path=path,
        num_pages=num_vertices,
        max_iterations=iterations,
    )
    ranks = sorted((v.id, v.rank) for v in result)
    return engine, ranks


class TestResultInvariance:
    """The planner may move data around, never change it."""

    def test_pagerank_identical_with_and_without_planner(self):
        _, off = _pagerank(False)
        _, on = _pagerank(True)
        assert on == off

    def test_identical_under_aggressive_faults(self):
        _, clean = _pagerank(True)
        _, chaos = _pagerank(True, faults=FaultPlan.aggressive(seed=17))
        _, chaos_off = _pagerank(
            False, faults=FaultPlan.aggressive(seed=17)
        )
        assert chaos == clean
        assert chaos_off == clean

    def test_flink_like_agrees(self):
        dfs = SimulatedDFS()
        path = stage_follower_graph(dfs, num_vertices=80, seed=7)
        results = []
        for config in (PLAN_ON, PLAN_OFF):
            engine = FlinkLikeEngine(dfs=dfs)
            result = pagerank.run(
                engine,
                config=config,
                graph_path=path,
                num_pages=80,
                max_iterations=3,
            )
            results.append(sorted((v.id, v.rank) for v in result))
        assert results[0] == results[1]


class TestShuffleReduction:
    def test_pagerank_moves_fewer_bytes_and_hoists(self):
        off_engine, _ = _pagerank(False, num_vertices=300, iterations=6)
        on_engine, _ = _pagerank(True, num_vertices=300, iterations=6)
        on, off = on_engine.metrics, off_engine.metrics
        assert on.shuffle_bytes < off.shuffle_bytes
        # The edge side of the join is loop-invariant: shuffled once,
        # served from the hoist cache on every later iteration.
        assert on.shuffles_hoisted == 5
        # The ranks side is co-partitioned with the join key, and the
        # final update routing is aligned — both elide.
        assert on.shuffles_elided > off.shuffles_elided
        assert on.simulated_seconds < off.simulated_seconds

    def test_hoist_cache_cleared_between_runs(self):
        engine, first = _pagerank(True)
        # Re-running on a fresh engine must not see stale entries; and
        # re-running on the *same* engine starts a fresh run too.
        assert engine._hoist_cache  # populated by the run
        _, again = _pagerank(True)
        assert first == again


class TestExplainMarkers:
    def test_motion_classes_rendered(self):
        text = pagerank.explain()
        assert "[co-partitioned]" in text
        assert "[hoisted]" in text
        assert "[shuffle]" in text
        # Rendered alongside the exchange-plane flag, e.g.
        # ``<strategy=repartition, exchange=columnar>``.
        assert "strategy=repartition" in text

    def test_compile_trace_records_the_pass(self):
        text = pagerank.explain(trace=True)
        assert "physical planning" in text
        assert "interesting-properties" in text

    def test_disabled_config_skips_the_pass(self):
        report = pagerank.report(PLAN_OFF)
        assert report.physical_joins == 0
        assert not report.physical_planning_applied
        on = pagerank.report(PLAN_ON)
        assert on.physical_joins >= 1
        assert on.physical_planning_applied


@parallelize
def join_then_group(xs: DataBag, ys: DataBag):
    joined = ((x, y) for x in xs for y in ys if x.k == y.k)
    totals = (
        Keyed(g.key, g.values.map(lambda p: p[0].payload).count())
        for g in joined.group_by(lambda p: p[0].k)
    )
    return totals


class TestJoinGroupPipelining:
    """``join → group_by`` on the same key shuffles once, not twice."""

    def _run(self, config):
        engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=4))
        engine.broadcast_join_threshold = 1  # force repartition join
        xs = DataBag([R(i % 7, "x" * 20) for i in range(140)])
        ys = DataBag([R(i % 7, "y" * 20) for i in range(35)])
        result = join_then_group.run(engine, config=config, xs=xs, ys=ys)
        return engine, sorted(result.fetch(), key=repr)

    def test_group_shuffle_elided(self):
        off_engine, off = self._run(PLAN_OFF)
        on_engine, on = self._run(PLAN_ON)
        assert on == off
        # The join output carries the join-key partitioner, so the
        # grouping on the same key reuses the layout.
        assert (
            on_engine.metrics.shuffles_elided
            > off_engine.metrics.shuffles_elided
        )
        assert (
            on_engine.metrics.shuffle_bytes
            < off_engine.metrics.shuffle_bytes
        )


@parallelize
def growing_join(xs: DataBag, rounds):
    acc = xs
    i = 0
    total = 0
    while i < rounds:
        joined = ((a, b) for a in acc for b in xs if a.k == b.k)
        total = total + joined.count()
        acc = acc.plus(acc)
        i = i + 1
    return total


class TestAdaptiveStrategy:
    def test_size_drift_triggers_adaptive_switch(self):
        engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=2))
        engine.broadcast_join_threshold = 64 * 1024
        xs = DataBag([R(i % 5, "p" * 40) for i in range(60)])
        total = growing_join.run(engine, config=PLAN_ON, xs=xs, rounds=6)
        # Early iterations: both sides comparable, repartition wins.
        # As `acc` doubles every round, broadcasting the static side
        # becomes cheaper — the recorded strategy flips at least once.
        assert engine.metrics.adaptive_switches >= 1
        assert engine.stats.joins  # observations were recorded
        # Differential: the drifting strategy never changes the count.
        plain = SparkLikeEngine(cluster=ClusterConfig(num_workers=2))
        plain.broadcast_join_threshold = 64 * 1024
        expected = growing_join.run(
            plain, config=PLAN_OFF, xs=xs, rounds=6
        )
        assert total == expected


class TestJoinOutputPartitioners:
    """Satellite: hash-partitioned join outputs say so."""

    def _join_plan(self):
        return CEqJoin(
            kx=_key(),
            ky=_key(),
            left=CBagRef(name="left"),
            right=CBagRef(name="right"),
        )

    def test_repartition_join_output_carries_key_partitioner(self):
        engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=4))
        engine.broadcast_join_threshold = 1
        env = {
            "left": DataBag([R(i % 5, "a") for i in range(50)]),
            "right": DataBag([R(i % 5, "b") for i in range(20)]),
        }
        executor, bag = self._execute(engine, env)
        assert bag.partitioner is not None
        # A flat record key is not the pair shape the output carries.
        pair_key = ScalarFn(("_p",), Attr(Ref("_p"), "k"))
        assert not bag.partitioner.matches(pair_key, bag.num_partitions)
        # Partitioner correctness is checked via a shuffle on the
        # declared key: already laid out, so it must elide.
        shuffled = executor.shuffle_by_key(bag, bag.partitioner.key)
        assert shuffled is bag

    def test_broadcast_join_output_keeps_big_side_layout(self):
        engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=4))
        engine.broadcast_join_threshold = 1 << 20
        env = {
            "left": DataBag([R(i % 5, "a" * 30) for i in range(80)]),
            "right": DataBag([R(i, "b") for i in range(5)]),
        }
        executor, bag = self._execute(engine, env, shuffle_left=True)
        assert bag.partitioner is not None
        shuffled = executor.shuffle_by_key(bag, bag.partitioner.key)
        assert shuffled is bag

    def _execute(self, engine, env, shuffle_left=False):
        from repro.engines.executor import JobExecutor

        plan = self._join_plan()
        if shuffle_left:
            # Give the probe side a known hash layout first (its own
            # job, so the join executor's DAG memo stays cold) so the
            # broadcast join has a partitioning to preserve.
            setup_job = engine._new_job()
            setup = JobExecutor(engine, dict(env), setup_job)
            env["left"] = setup.shuffle_by_key(
                setup._exec(plan.left), plan.kx
            )
            engine._finish_job(setup_job)
        job = engine._new_job()
        executor = JobExecutor(engine, env, job)
        bag = executor._exec(plan)
        engine._finish_job(job)
        return executor, bag


class TestCrossCost:
    """Satellite: cross charges the scan plus every emitted pair."""

    def test_cross_element_ops_count_output(self):
        engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=1))
        env = {
            "left": DataBag([R(i, "a") for i in range(4)]),
            "right": DataBag([R(i, "b") for i in range(3)]),
        }
        plan = CCross(left=CBagRef(name="left"), right=CBagRef(name="right"))
        job = engine._new_job()
        from repro.engines.executor import JobExecutor

        bag = JobExecutor(engine, env, job)._exec(plan)
        engine._finish_job(job)
        assert bag.count() == 12
        # One scan of the big side (4) plus one op per emitted pair
        # (12): the old ``max`` form under-charged dense crosses.
        assert engine.metrics.element_ops == 16


class TestPlanAnnotationUnits:
    def test_loop_invariance_requires_cached_leaves(self):
        from repro.optimizer.physical_props import (
            PlanContext,
            annotate_physical,
        )

        plan = CEqJoin(
            kx=_key(),
            ky=_key(),
            left=CBagRef(name="a"),
            right=CBagRef(name="b"),
        )
        ctx = PlanContext(
            in_loop=True,
            cached_names=frozenset({"b"}),
            loop_mutated=frozenset({"a"}),
        )
        annotated, stats = annotate_physical(plan, ctx)
        assert annotated.left.phys.motion == "required"
        assert annotated.right.phys.motion == "hoistable"
        assert annotated.right.phys.invariant_refs == ("b",)
        # Hoisting amortizes a shuffle but does not pin the strategy;
        # only an elidable side fixes repartition statically.
        assert annotated.phys.strategy == "cost"
        assert stats.annotated_joins == 1
        assert stats.hoistable_inputs == 1

    def test_outside_loop_nothing_hoists(self):
        from repro.optimizer.physical_props import (
            PlanContext,
            annotate_physical,
        )

        plan = CEqJoin(
            kx=_key(),
            ky=_key(),
            left=CBagRef(name="a"),
            right=CBagRef(name="b"),
        )
        ctx = PlanContext(
            in_loop=False, cached_names=frozenset({"a", "b"})
        )
        annotated, stats = annotate_physical(plan, ctx)
        assert annotated.phys.strategy == "cost"
        assert stats.hoistable_inputs == 0
        assert not stats.fired

"""The two-level fingerprint cache: persistence, eviction, integrity.

Covers the cache in isolation (store/lookup/evict/corrupt) and wired
into ``Algorithm.run`` through ``Engine.attach_plan_cache`` — the
in-process equivalent of the cross-driver warm start CI exercises via
``REPRO_PLAN_CACHE_DIR``.
"""

from __future__ import annotations

import os

import pytest

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.plancache import (
    PlanCache,
    default_plan_cache,
)
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.fingerprint import plan_fingerprint
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.tpch.datagen import stage_tpch
from repro.workloads.tpch.q1 import tpch_q1

Q1_PARAMS = {"ship_date_max": "1996-12-01"}


@pytest.fixture
def world():
    dfs = SimulatedDFS()
    _, lineitem = stage_tpch(dfs, sf=0.01, seed=7)
    return {"dfs": dfs, "lineitem": lineitem}


def fresh_engine(world, cache):
    engine = SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4), dfs=world["dfs"]
    )
    engine.attach_plan_cache(cache)
    return engine


def run_q1(world, cache, config=None):
    engine = fresh_engine(world, cache)
    result = tpch_q1.run(
        engine,
        config=config,
        lineitem_path=world["lineitem"],
        **Q1_PARAMS,
    )
    return engine, result


class TestPlanCaching:
    def test_cold_then_warm(self, world, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        eng1, r1 = run_q1(world, cache)
        assert cache.stats.plan_misses == 1
        assert eng1.metrics.plan_cache_misses == 1
        eng2, r2 = run_q1(world, cache)
        assert cache.stats.plan_hits == 1
        assert eng2.metrics.plan_cache_hits == 1
        assert eng2.metrics.compile_seconds_saved > 0
        assert repr(r1) == repr(r2)
        assert "plan_cache=1/1" in eng2.metrics.summary()

    def test_survives_fresh_cache_instance(self, world, tmp_path):
        # A new PlanCache over the same directory simulates a fresh
        # driver process: the plan must load from disk, not recompile.
        cache1 = PlanCache(cache_dir=str(tmp_path))
        _, r1 = run_q1(world, cache1)
        cache2 = PlanCache(cache_dir=str(tmp_path))
        _, r2 = run_q1(world, cache2)
        assert cache2.stats.plan_hits == 1
        assert cache2.stats.plan_misses == 0
        assert cache2.stats.disk_loads == 1
        assert repr(r1) == repr(r2)

    def test_loaded_plan_explains_its_origin(self, world, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        run_q1(world, cache)
        compiled = cache.compiled(tpch_q1, EmmaConfig())
        assert compiled.cache_origin == "plan-cache"
        assert "source=plan-cache" in compiled.explain()
        assert f"fingerprint={compiled.fingerprint[:12]}" in (
            compiled.explain()
        )

    def test_config_change_misses(self, world, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        run_q1(world, cache, config=EmmaConfig())
        run_q1(
            world, cache, config=EmmaConfig(operator_chaining=False)
        )
        assert cache.stats.plan_misses == 2
        assert cache.stats.plan_hits == 0

    def test_corrupt_file_is_a_miss(self, world, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        run_q1(world, cache)
        (pkl,) = [
            p for p in os.listdir(tmp_path) if p.startswith("plan-")
        ]
        with open(tmp_path / pkl, "wb") as f:
            f.write(b"not a pickle")
        cache2 = PlanCache(cache_dir=str(tmp_path))
        _, result = run_q1(world, cache2)
        # Fell back to a fresh compile, then re-cached.
        assert cache2.stats.plan_misses == 1
        assert result is not None
        _, again = run_q1(world, cache2)
        assert cache2.stats.plan_hits >= 1


class TestResultCaching:
    def test_round_trip_returns_fresh_value(self, world, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        _, r1 = run_q1(world, cache)
        fp = plan_fingerprint(tpch_q1.lifted.program, EmmaConfig())
        assert cache.store_result(fp, "snap", r1)
        hit, value = cache.lookup_result(fp, "snap")
        assert hit
        assert repr(value) == repr(r1)
        assert value is not r1  # decoded copy, never the stored object

    def test_miss_on_unknown_snapshot(self, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        hit, value = cache.lookup_result("fp", "snap")
        assert not hit and value is None
        assert cache.stats.result_misses == 1

    def test_unpicklable_store_skipped(self, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        assert not cache.store_result("fp", "snap", lambda x: x)
        assert cache.stats.store_skips == 1
        hit, _ = cache.lookup_result("fp", "snap")
        assert not hit


class TestEviction:
    def test_memory_limit_drops_to_disk_tier(self, world, tmp_path):
        cache = PlanCache(cache_dir=str(tmp_path))
        _, r1 = run_q1(world, cache)
        fp = plan_fingerprint(tpch_q1.lifted.program, EmmaConfig())
        cache.store_result(fp, "snap", r1)
        assert cache.resident_bytes() > 1024
        cache.set_memory_limit(1024)
        assert cache.resident_bytes() <= 1024
        assert cache.stats.evictions >= 1
        # Evicted entries are still servable — hits reload the files
        # (the plan blob is the big one, so it was evicted first).
        hit, value = cache.lookup_result(fp, "snap")
        assert hit and repr(value) == repr(r1)
        assert cache.lookup_plan(fp) is not None
        assert cache.stats.disk_loads >= 1

    def test_engine_budget_bounds_cache(self, world, tmp_path):
        # attach_plan_cache adopts the engine's spill budget when the
        # cache has no limit of its own (PR 7 discipline).
        cache = PlanCache(cache_dir=str(tmp_path))
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4),
            dfs=world["dfs"],
            memory_budget=262144,
        )
        engine.attach_plan_cache(cache)
        assert cache.memory_limit == 262144


class TestEnvironmentDefault:
    def test_off_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_CACHE_DIR", raising=False)
        assert default_plan_cache() is None

    def test_env_enables_shared_cache(
        self, world, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PLAN_CACHE_DIR", str(tmp_path))
        cache = default_plan_cache()
        assert cache is not None
        assert default_plan_cache() is cache  # singleton per dir
        # Engines with no explicitly attached cache pick it up in run.
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4), dfs=world["dfs"]
        )
        tpch_q1.run(
            engine, lineitem_path=world["lineitem"], **Q1_PARAMS
        )
        assert engine.metrics.plan_cache_misses == 1
        engine2 = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4), dfs=world["dfs"]
        )
        tpch_q1.run(
            engine2, lineitem_path=world["lineitem"], **Q1_PARAMS
        )
        assert engine2.metrics.plan_cache_hits == 1

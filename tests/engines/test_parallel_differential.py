"""Differential suite for the host-parallel execution backend.

The backbone guarantee of :mod:`repro.engines.scheduler` is that the
execution mode is *observably irrelevant*: for any workload — including
one under aggressive fault injection — serial, threaded, and
process-pool execution must produce bit-identical results, identical
``simulated_seconds``, and identical fault/recovery schedules.  Only
the measured ``wall_clock_seconds`` (and the parallel-backend counters
themselves) may differ.
"""

import pytest

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.sparklike import SparkLikeEngine
from repro.workloads import datagen, graphs
from repro.workloads.kmeans import initial_centroids, kmeans
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

MODES = ("serial", "threads", "processes")

#: Metrics fields allowed to differ between execution modes: the
#: measured wall clock and the parallel backend's own accounting.
_MODE_DEPENDENT = {
    "wall_clock_seconds",
    "parallel_tasks",
    "parallel_stages",
    "ipc_bytes_shipped",
    "ipc_bytes_returned",
    "kernels_rehydrated",
    "speculative_launches",
    "speculative_wins",
    "serial_fallbacks",
    # Columnar exchange block shipping is a processes-mode transport
    # detail (blocks only "ship" across a process boundary).
    "columnar_blocks_shipped",
}


@pytest.fixture(scope="module")
def world():
    """Small staged datasets shared by every differential case."""
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=48)
    points_path = datagen.stage_points(dfs, n=90, centers=3, dim=2)
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.05)
    return {
        "dfs": dfs,
        "graph": graph_path,
        "points": points_path,
        "orders": orders_path,
        "lineitem": lineitem_path,
    }


def _engine(world, mode, fault_plan=None):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4),
        dfs=world["dfs"],
        execution_mode=mode,
        max_parallel_tasks=2,
        fault_plan=fault_plan,
    )


def _invariant_metrics(engine) -> dict:
    """Every counter that must not depend on the execution mode."""
    return {
        name: value
        for name, value in vars(engine.metrics).items()
        if name not in _MODE_DEPENDENT
    }


def _run_all_modes(world, algo, fault_plan=None, **params):
    """Run ``algo`` under every mode; assert bit-identical outcomes.

    Results are compared by exact ``repr`` in collection order (not
    sorted): the deterministic by-index merge must reproduce the serial
    record order, not merely the same multiset.
    """
    outcomes = {}
    for mode in MODES:
        # FaultPlan is a frozen dataclass; each engine builds its own
        # injector from it, so sharing the plan across modes is safe.
        engine = _engine(world, mode, fault_plan=fault_plan)
        result = algo.run(engine, **params)
        records = result.fetch() if hasattr(result, "fetch") else result
        outcomes[mode] = (
            [repr(r) for r in records],
            _invariant_metrics(engine),
            engine.metrics,
        )
    base_records, base_metrics, _ = outcomes["serial"]
    for mode in ("threads", "processes"):
        records, metrics, raw = outcomes[mode]
        assert records == base_records, f"{mode} diverged from serial"
        assert metrics == base_metrics, f"{mode} metrics diverged"
        assert raw.parallel_tasks > 0
        assert raw.serial_fallbacks == 0
    return outcomes


class TestWorkloadsBitIdentical:
    def test_pagerank(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        _run_all_modes(
            world,
            pagerank,
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=3,
        )

    def test_kmeans(self, world):
        init = initial_centroids(
            world["dfs"].get(world["points"]).records, 3
        )
        _run_all_modes(
            world,
            kmeans,
            points_path=world["points"],
            initial=init,
            epsilon=1e-6,
            max_iterations=4,
        )

    def test_tpch_q1(self, world):
        _run_all_modes(
            world,
            tpch_q1,
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )

    def test_tpch_q4(self, world):
        _run_all_modes(
            world,
            tpch_q4,
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            date_min="1995-01-01",
            date_max="1996-07-01",
        )


class TestFaultedRunsBitIdentical:
    """Fault schedules draw from the monotone task counter, which the
    driver advances in partition order after each parallel stage — so
    injected chaos must land identically in every mode."""

    def test_pagerank_under_aggressive_faults(self, world):
        n = len(world["dfs"].get(world["graph"]).records)
        outcomes = _run_all_modes(
            world,
            pagerank,
            fault_plan=FaultPlan.aggressive(seed=23),
            graph_path=world["graph"],
            num_pages=n,
            max_iterations=3,
        )
        _, metrics, _ = outcomes["serial"]
        assert metrics["tasks_retried"] > 0
        assert metrics["workers_lost"] > 0
        assert metrics["stragglers_injected"] > 0

    def test_tpch_q1_under_aggressive_faults(self, world):
        outcomes = _run_all_modes(
            world,
            tpch_q1,
            fault_plan=FaultPlan.aggressive(seed=5),
            lineitem_path=world["lineitem"],
            ship_date_max="1996-12-01",
        )
        _, metrics, _ = outcomes["serial"]
        assert metrics["tasks_retried"] > 0

"""Executor tests for fused operator chains, DAG memoization, and the
union partitioner-preservation fast path."""

from dataclasses import dataclass

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    Compare,
    Const,
    ListExpr,
    Ref,
)
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.lowering.chaining import chain_operators
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CChain,
    CFilter,
    CFlatMap,
    CMap,
    CUnion,
    ScalarFn,
)


@dataclass(frozen=True)
class R:
    k: int
    v: int


def spark(**kw) -> SparkLikeEngine:
    kw.setdefault("cluster", ClusterConfig(num_workers=4))
    return SparkLikeEngine(**kw)


def flink(**kw) -> FlinkLikeEngine:
    kw.setdefault("cluster", ClusterConfig(num_workers=4))
    return FlinkLikeEngine(**kw)


class UnpipelinedEngine(SparkLikeEngine):
    """A Spark-like engine whose chains are NOT scheduled as one task."""

    pipelined_chains = False


def run_bag(eng, plan, env) -> DataBag:
    return DataBag(eng.collect(eng.defer(plan, env)))


def inc() -> ScalarFn:
    return ScalarFn(("x",), BinOp("+", Ref("x"), Const(1)))


def gt(n: int) -> ScalarFn:
    return ScalarFn(("x",), Compare(">", Ref("x"), Const(n)))


def dup() -> ScalarFn:
    """x -> [x, x + 100]"""
    return ScalarFn(
        ("x",),
        ListExpr((Ref("x"), BinOp("+", Ref("x"), Const(100)))),
    )


def key_k() -> ScalarFn:
    return ScalarFn(("x",), Attr(Ref("x"), "k"))


def pipeline_plan() -> CMap:
    """Map -> Filter -> FlatMap -> Map over ``xs`` (a 4-op run)."""
    return CMap(
        fn=inc(),
        input=CFlatMap(
            fn=dup(),
            input=CFilter(
                predicate=gt(2),
                input=CMap(fn=inc(), input=CBagRef(name="xs")),
            ),
        ),
    )


ENV = {"xs": DataBag(list(range(40)))}


class TestChainedExecution:
    def test_results_identical_fused_vs_unfused(self):
        plan = pipeline_plan()
        chained = chain_operators(plan)
        assert isinstance(chained, CChain)
        for make in (spark, flink):
            baseline = run_bag(make(), plan, dict(ENV))
            fused = run_bag(make(), chained, dict(ENV))
            assert fused == baseline

    def test_udf_invocation_parity(self):
        plan = pipeline_plan()
        eng_a, eng_b = spark(), spark()
        run_bag(eng_a, plan, dict(ENV))
        run_bag(eng_b, chain_operators(plan), dict(ENV))
        assert (
            eng_b.metrics.udf_invocations
            == eng_a.metrics.udf_invocations
        )

    def test_chain_metrics(self):
        eng = spark()
        run_bag(eng, chain_operators(pipeline_plan()), dict(ENV))
        assert eng.metrics.chained_operators == 4
        assert eng.metrics.tasks_saved == 3
        assert eng.metrics.udfs_compiled > 0

    def test_fused_is_strictly_cheaper(self):
        plan = pipeline_plan()
        eng_a, eng_b = spark(), spark()
        run_bag(eng_a, plan, dict(ENV))
        run_bag(eng_b, chain_operators(plan), dict(ENV))
        # Fewer task-overhead charges and one materialization pass per
        # chain instead of per operator.
        assert (
            eng_b.metrics.simulated_seconds
            < eng_a.metrics.simulated_seconds
        )
        assert eng_b.metrics.element_ops < eng_a.metrics.element_ops

    def test_unpipelined_engine_same_results_no_savings(self):
        plan = chain_operators(pipeline_plan())
        eng = UnpipelinedEngine(cluster=ClusterConfig(num_workers=4))
        result = run_bag(eng, plan, dict(ENV))
        assert result == run_bag(spark(), pipeline_plan(), dict(ENV))
        assert eng.metrics.chained_operators == 4
        assert eng.metrics.tasks_saved == 0

    def test_all_filter_chain_preserves_partitioner(self):
        eng = spark()
        from repro.engines.executor import JobExecutor

        job = eng._new_job()
        ex = JobExecutor(eng, {}, job)
        shuffled = ex.shuffle_by_key(
            ex.parallelize_local([R(i % 5, i) for i in range(50)]),
            key_k(),
        )
        name = "__pre__"
        ex.env[name] = shuffled
        vk = ScalarFn(("x",), Compare(">", Attr(Ref("x"), "v"), Const(5)))
        vk2 = ScalarFn(("x",), Compare(">", Attr(Ref("x"), "v"), Const(9)))
        plan = chain_operators(
            CFilter(
                predicate=vk2,
                input=CFilter(predicate=vk, input=CBagRef(name=name)),
            )
        )
        assert isinstance(plan, CChain)
        out = ex._exec(plan)
        assert out.partitioner is not None

    def test_interpreter_fallback_udf_still_correct(self):
        # A host function Call is resolvable but its *result* may be —
        # here we force a non-compilable body via an unbound free name
        # resolved only through the runtime env at closure-compile time.
        plan = CMap(
            fn=ScalarFn(("x",), BinOp("+", Ref("x"), Ref("delta"))),
            input=CMap(fn=inc(), input=CBagRef(name="xs")),
        )
        env = {"xs": DataBag([1, 2, 3]), "delta": 10}
        fused = run_bag(spark(), chain_operators(plan), env)
        assert fused == run_bag(spark(), plan, env)


class TestAggMapSideFusion:
    def test_fused_agg_matches_unfused(self):
        plan = CAggBy(
            key=ScalarFn(("p",), BinOp("%", Ref("p"), Const(3))),
            specs=(AlgebraSpec("count"), AlgebraSpec("sum")),
            input=CFilter(
                predicate=gt(5),
                input=CMap(fn=inc(), input=CBagRef(name="ys")),
            ),
        )
        env = {"ys": DataBag(list(range(50)))}
        chained = chain_operators(plan)
        assert isinstance(chained.input, CChain)
        base = {
            r.key: r.aggs for r in run_bag(spark(), plan, dict(env))
        }
        fused = {
            r.key: r.aggs
            for r in run_bag(spark(), chained, dict(env))
        }
        assert fused == base

    def test_fused_agg_saves_every_chain_task(self):
        plan = CAggBy(
            key=ScalarFn(("p",), BinOp("%", Ref("p"), Const(3))),
            specs=(AlgebraSpec("count"),),
            input=CFilter(
                predicate=gt(5),
                input=CMap(fn=inc(), input=CBagRef(name="ys")),
            ),
        )
        eng = spark()
        run_bag(eng, chain_operators(plan), {"ys": DataBag(list(range(50)))})
        # The 2-op chain collapses entirely into the aggregation's map
        # phase: n-1 interior charges plus the chain's own task.
        assert eng.metrics.tasks_saved == 2

    def test_shared_chain_not_inlined_into_agg(self):
        head = CFilter(
            predicate=gt(5),
            input=CMap(fn=inc(), input=CBagRef(name="ys")),
        )
        plan = CUnion(
            left=CAggBy(
                key=ScalarFn(("p",), BinOp("%", Ref("p"), Const(3))),
                specs=(AlgebraSpec("count"),),
                input=head,
            ),
            right=head,
        )
        env = {"ys": DataBag(list(range(30)))}
        chained = chain_operators(plan)
        assert chained.left.input.shared
        base = run_bag(spark(), plan, dict(env))
        fused = run_bag(spark(), chained, dict(env))
        assert sorted(map(repr, fused)) == sorted(map(repr, base))


class TestDagMemoization:
    def test_diamond_executes_shared_subtree_once(self):
        shared = CMap(fn=inc(), input=CBagRef(name="xs"))
        plan = CUnion(
            left=CFilter(predicate=gt(5), input=shared),
            right=CFilter(predicate=gt(100), input=shared),
        )
        n = 20
        eng = spark()
        result = run_bag(eng, plan, {"xs": DataBag(list(range(n)))})
        assert eng.metrics.dag_memo_hits == 1
        # The shared map ran once (n invocations), each filter saw its
        # n outputs: 3n total, not 4n.
        assert eng.metrics.udf_invocations == 3 * n
        expected = sorted(
            [x + 1 for x in range(n) if x + 1 > 5]
            + [x + 1 for x in range(n) if x + 1 > 100]
        )
        assert sorted(result.fetch()) == expected

    def test_deferred_bag_consumed_twice_in_one_job_runs_once(self):
        eng = spark()
        lazy = eng.defer(
            CMap(fn=inc(), input=CBagRef(name="xs")),
            {"xs": DataBag(list(range(10)))},
        )
        plan = CUnion(
            left=CBagRef(name="d"), right=CBagRef(name="d")
        )
        result = run_bag(eng, plan, {"d": lazy})
        assert eng.metrics.dag_memo_hits == 1
        assert eng.metrics.udf_invocations == 10
        assert sorted(result.fetch()) == sorted(
            list(range(1, 11)) * 2
        )


class TestUnionPartitioner:
    def _executor(self):
        eng = spark()
        from repro.engines.executor import JobExecutor

        return eng, JobExecutor(eng, {}, eng._new_job())

    def _shuffled(self, ex, key, n=40):
        return ex.shuffle_by_key(
            ex.parallelize_local([R(i % 5, i) for i in range(n)]), key
        )

    def _ref(self, ex, bag, name):
        ex.env[name] = bag
        return CBagRef(name=name)

    def test_union_of_co_partitioned_bags_keeps_partitioner(self):
        _eng, ex = self._executor()
        left = self._shuffled(ex, key_k())
        right = self._shuffled(ex, key_k())
        out = ex._exec(
            CUnion(
                left=self._ref(ex, left, "__l__"),
                right=self._ref(ex, right, "__r__"),
            )
        )
        assert out.partitioner is not None
        assert out.partitioner.matches(key_k(), out.num_partitions)

    def test_union_with_unpartitioned_side_drops_partitioner(self):
        _eng, ex = self._executor()
        left = self._shuffled(ex, key_k())
        right = ex.parallelize_local([R(1, 1)])
        out = ex._exec(
            CUnion(
                left=self._ref(ex, left, "__l__"),
                right=self._ref(ex, right, "__r__"),
            )
        )
        assert out.partitioner is None

    def test_union_with_mismatched_keys_drops_partitioner(self):
        _eng, ex = self._executor()
        left = self._shuffled(ex, key_k())
        right = self._shuffled(
            ex, ScalarFn(("x",), Attr(Ref("x"), "v"))
        )
        out = ex._exec(
            CUnion(
                left=self._ref(ex, left, "__l__"),
                right=self._ref(ex, right, "__r__"),
            )
        )
        assert out.partitioner is None

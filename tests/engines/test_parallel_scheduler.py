"""Unit tests for the host-parallel partition-task scheduler.

Covers the scheduler's three modes, dependency-driven stage graphs,
deterministic by-index merging under out-of-order completion,
speculative straggler re-execution, the source-shipping pickle layer
(chain kernels, compiled UDFs), the EngineError-not-PicklingError
doorway, the end-to-end serial fallback, and the ``stable_hash``
coverage the worker-side memo fingerprints rely on.
"""

import pickle
import threading
import time

import pytest

from repro.comprehension.exprs import BinOp, Compare, Const, Ref
from repro.core.databag import DataBag
from repro.engines.chainkernel import (
    FILTER,
    MAP,
    KernelStep,
    build_chain_kernel,
)
from repro.engines.cluster import ClusterConfig, stable_hash
from repro.engines.metrics import Metrics
from repro.engines.scheduler import (
    KernelSpec,
    PartitionTask,
    TaskScheduler,
    TaskSpec,
    TaskStage,
    UdfRef,
    register_runner,
    ship_task,
    stage_of,
)
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import EngineError
from repro.lowering.combinators import CBagRef, CMap, ScalarFn


def inc_step() -> KernelStep:
    """A chain step computing ``x + 1``."""
    return KernelStep(
        MAP, None, 0, ("x",), BinOp("+", Ref("x"), Const(1)), {}
    )


def big_step() -> KernelStep:
    """A chain step keeping ``x > 10``."""
    return KernelStep(
        FILTER, None, 0, ("x",), Compare(">", Ref("x"), Const(10)), {}
    )


class EchoSpec(TaskSpec):
    """Test spec whose runner doubles the task data."""

    kind = "echo"

    def build(self):
        """No artifact needed."""
        return None


class SleepSpec(TaskSpec):
    """Test spec whose runner sleeps, then returns a value."""

    kind = "sleep"

    def build(self):
        """No artifact needed."""
        return None


register_runner("echo", lambda _prepared, data: data * 2)
register_runner(
    "sleep", lambda _prepared, data: (time.sleep(data[0]), data[1])[1]
)


class TestSchedulerModes:
    def test_invalid_mode_raises(self):
        with pytest.raises(EngineError, match="execution mode"):
            TaskScheduler(mode="gpu")

    def test_invalid_engine_mode_raises(self):
        with pytest.raises(EngineError, match="execution_mode"):
            SparkLikeEngine(execution_mode="gpu")

    def test_configure_execution_rebuilds_scheduler(self):
        # Name the mode explicitly: the suite may run under a
        # REPRO_EXECUTION_MODE override (the parallel-backend CI job).
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=2), execution_mode="serial"
        )
        assert engine.scheduler.mode == "serial"
        engine.configure_execution("threads", max_parallel_tasks=3)
        scheduler = engine.scheduler
        assert scheduler.mode == "threads" and scheduler.width == 3
        engine.configure_execution("serial")
        assert engine.scheduler is not scheduler

    @pytest.mark.parametrize("mode", ["serial", "threads"])
    def test_run_stage_merges_by_task_index(self, mode):
        scheduler = TaskScheduler(mode=mode, max_parallel_tasks=4)
        spec = EchoSpec()
        tasks = [
            PartitionTask(i, spec, [i, i + 1]) for i in range(6)
        ]
        try:
            out = scheduler.run_stage(tasks)
        finally:
            scheduler.close()
        assert out == [[i, i + 1] * 2 for i in range(6)]

    def test_out_of_order_completion_keeps_order(self):
        # Later tasks finish first; the merge must stay positional.
        scheduler = TaskScheduler(
            mode="threads", max_parallel_tasks=4, speculation=False
        )
        spec = SleepSpec()
        delays = [0.15, 0.1, 0.05, 0.0]
        tasks = [
            PartitionTask(i, spec, (d, i))
            for i, d in enumerate(delays)
        ]
        try:
            out = scheduler.run_stage(tasks)
        finally:
            scheduler.close()
        assert out == [0, 1, 2, 3]


class TestStageGraph:
    def test_downstream_stage_consumes_upstream_results(self):
        spec = EchoSpec()
        first = TaskStage(
            "a", lambda _r: [PartitionTask(i, spec, [i]) for i in range(3)]
        )
        second = TaskStage(
            "b",
            lambda results: [
                PartitionTask(0, spec, [sum(x[0] for x in results["a"])])
            ],
            deps=("a",),
        )
        for mode in ("serial", "threads"):
            scheduler = TaskScheduler(mode=mode, max_parallel_tasks=2)
            try:
                results = scheduler.run_graph([second, first])
            finally:
                scheduler.close()
            # a yields [0,0], [1,1], [2,2]; b echoes [sum of firsts].
            assert results["a"] == [[0, 0], [1, 1], [2, 2]]
            assert results["b"] == [[3, 3]]

    def test_independent_stages_both_run(self):
        spec = EchoSpec()
        left = stage_of([PartitionTask(0, spec, [1])], "left")
        right = stage_of([PartitionTask(0, spec, [2])], "right")
        scheduler = TaskScheduler(mode="threads", max_parallel_tasks=2)
        try:
            results = scheduler.run_graph([left, right])
        finally:
            scheduler.close()
        assert results == {"left": [[1, 1]], "right": [[2, 2]]}

    def test_unknown_dependency_raises(self):
        stage = TaskStage("a", lambda _r: [], deps=("ghost",))
        with pytest.raises(EngineError, match="unknown"):
            TaskScheduler().run_graph([stage])

    def test_cyclic_dependencies_raise(self):
        a = TaskStage("a", lambda _r: [], deps=("b",))
        b = TaskStage("b", lambda _r: [], deps=("a",))
        with pytest.raises(EngineError, match="cyclic"):
            TaskScheduler().run_graph([a, b])


class TestSpeculation:
    def test_straggler_is_relaunched(self):
        scheduler = TaskScheduler(
            mode="threads",
            max_parallel_tasks=4,
            speculation=True,
            speculation_quantile=0.5,
            speculation_factor=1.0,
            min_speculation_seconds=0.05,
        )
        spec = SleepSpec()
        delays = [0.0, 0.0, 0.0, 0.6]
        tasks = [
            PartitionTask(i, spec, (d, i))
            for i, d in enumerate(delays)
        ]
        metrics = Metrics()
        try:
            out = scheduler.run_stage(tasks, metrics=metrics)
        finally:
            scheduler.close()
        assert out == [0, 1, 2, 3]
        assert metrics.speculative_launches >= 1
        assert any(
            name == "speculative-launch"
            for name, _attrs in scheduler.events
        )


class TestKernelShipping:
    def test_chain_kernel_pickle_round_trip(self):
        kernel = build_chain_kernel([inc_step(), big_step()])
        clone = pickle.loads(pickle.dumps(kernel))
        data = list(range(20))
        rows_a, rows_b = [], []
        counts_a = kernel.run(data, rows_a.append)
        counts_b = clone.run(data, rows_b.append)
        assert rows_a == rows_b == [x + 1 for x in data if x + 1 > 10]
        assert counts_a == counts_b
        assert clone.source == kernel.source

    def test_kernel_step_rebuilds_closure_after_pickle(self):
        step = pickle.loads(pickle.dumps(inc_step()))
        assert step.closure is None
        assert step.resolve_closure()(41) == 42

    def test_kernel_spec_fingerprint_is_content_based(self):
        a = KernelSpec([inc_step(), big_step()])
        b = KernelSpec([inc_step(), big_step()])
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint[0] == "kernel"

    def test_compiled_udf_pickle_round_trip(self):
        from repro.engines.executor import _CompiledUdf

        fn = ScalarFn(("x",), BinOp("*", Ref("x"), Const(3)))
        closure, native = fn.compile_native({})
        udf = _CompiledUdf(fn, {}, closure, 0, native)
        clone = pickle.loads(pickle.dumps(udf))
        assert clone.closure(7) == udf.closure(7) == 21
        assert clone.extra == udf.extra

    def test_udf_ref_compiles_in_place(self):
        ref = UdfRef(("x",), BinOp("+", Ref("x"), Const(5)), {})
        clone = pickle.loads(pickle.dumps(ref))
        assert clone.compile()(1) == 6
        assert clone.digest() == ref.digest()

    def test_processes_mode_matches_serial(self):
        spec = KernelSpec([inc_step(), big_step()])
        partitions = [list(range(0, 15)), list(range(15, 25)), []]
        tasks = [
            PartitionTask(i, spec, p) for i, p in enumerate(partitions)
        ]
        serial = TaskScheduler(mode="serial").run_stage(tasks)
        metrics = Metrics()
        scheduler = TaskScheduler(mode="processes", max_parallel_tasks=2)
        out = scheduler.run_stage(tasks, metrics=metrics)
        assert out == serial
        assert metrics.serial_fallbacks == 0
        assert metrics.parallel_tasks == len(tasks)
        assert metrics.ipc_bytes_shipped > 0
        assert metrics.ipc_bytes_returned > 0


class TestUnpicklableWork:
    def test_ship_task_raises_engine_error(self):
        spec = KernelSpec([inc_step()])
        with pytest.raises(EngineError, match="process boundary"):
            ship_task(spec, [threading.Lock()], "map")

    def test_executor_falls_back_to_serial(self):
        # Partition data that cannot be pickled (thread locks) must
        # degrade to in-process execution, not crash the job.
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=2),
            execution_mode="processes",
            max_parallel_tasks=2,
        )
        records = [threading.Lock() for _ in range(4)]
        plan = CMap(
            fn=ScalarFn(("x",), Ref("x")), input=CBagRef(name="xs")
        )
        out = engine.collect(
            engine.defer(plan, {"xs": DataBag(records)})
        )
        assert sorted(map(id, out)) == sorted(map(id, records))
        assert engine.metrics.serial_fallbacks >= 1


class TestStableHashCoverage:
    def test_dict_hash_ignores_insertion_order(self):
        a = {"x": 1, "y": (2, 3)}
        b = {"y": (2, 3), "x": 1}
        assert stable_hash(a) == stable_hash(b)

    def test_dict_and_set_hash_apart(self):
        assert stable_hash({}) != stable_hash(set())
        assert stable_hash({1: 2}) != stable_hash({(1, 2)})

    def test_set_and_frozenset_are_order_independent(self):
        assert stable_hash({3, 1, 2}) == stable_hash(frozenset([2, 3, 1]))

    def test_nested_dicts_in_records(self):
        assert stable_hash(({"a": 1},)) == stable_hash(({"a": 1},))
        assert stable_hash(({"a": 1},)) != stable_hash(({"a": 2},))

    def test_unhashable_object_raises(self):
        with pytest.raises(EngineError, match="stable partition hash"):
            stable_hash(object())

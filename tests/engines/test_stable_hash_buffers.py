"""Pinned ``stable_hash`` values for typed buffers (arrays, batches).

The plan/result cache keys on ``stable_hash`` digests, so these values
must never drift across processes, platforms, or releases — each test
pins the exact 32-bit value.  A failure here means every on-disk cache
in the world just silently went cold (or worse, stale): change the
hash scheme only with a deliberate cache-format bump.
"""

from __future__ import annotations

from array import array

import pytest

from repro.engines.cluster import stable_hash
from repro.engines.columnar import HAS_NUMPY, batch_from_records
from repro.errors import EngineError


class TestArrayHashing:
    def test_int_array_pinned(self):
        assert stable_hash(array("q", [1, 2, 3])) == 4255732930

    def test_float_array_pinned(self):
        assert stable_hash(array("d", [0.5, -1.25])) == 2474059063

    def test_typecode_distinguishes(self):
        # Same bytes widths differ by typecode; same logical values
        # in different typecodes must not collide by construction.
        assert stable_hash(array("q", [1])) != stable_hash(
            array("Q", [1])
        )

    def test_content_sensitivity(self):
        assert stable_hash(array("q", [1, 2, 3])) != stable_hash(
            array("q", [1, 2, 4])
        )

    def test_process_independence(self):
        # Recomputing from a fresh copy gives the same value — the
        # hash sees content, not object identity.
        a = array("d", [0.5, -1.25])
        b = array("d", a.tolist())
        assert stable_hash(a) == stable_hash(b)


class TestColumnBatchHashing:
    def test_batch_pinned(self):
        batch, why = batch_from_records([(1, "a", 0.5), (2, "b", 1.5)])
        assert batch is not None, why
        assert stable_hash(batch) == 3533285341

    def test_representation_independent(self):
        # The digest is over logical column values, so it must agree
        # between numpy-backed and pure-Python column storage; the
        # pinned value above was computed without numpy.
        batch, why = batch_from_records([(1, "a", 0.5), (2, "b", 1.5)])
        assert batch is not None, why
        again, _ = batch_from_records([(1, "a", 0.5), (2, "b", 1.5)])
        assert stable_hash(batch) == stable_hash(again)

    def test_content_sensitivity(self):
        a, _ = batch_from_records([(1, "a"), (2, "b")])
        b, _ = batch_from_records([(1, "a"), (2, "c")])
        assert a is not None and b is not None
        assert stable_hash(a) != stable_hash(b)


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
class TestNumpyHashing:
    def test_ndarray_pinned(self):
        import numpy as np

        value = np.array([1, 2, 3], dtype=np.int64)
        assert stable_hash(value) == 2647688596

    def test_dtype_distinguishes(self):
        import numpy as np

        i = np.array([1, 2, 3], dtype=np.int64)
        f = np.array([1, 2, 3], dtype=np.float64)
        assert stable_hash(i) != stable_hash(f)

    def test_noncontiguous_equals_contiguous(self):
        import numpy as np

        base = np.arange(20, dtype=np.int64)
        view = base[::2]
        assert not view.flags["C_CONTIGUOUS"]
        assert stable_hash(view) == stable_hash(
            np.ascontiguousarray(view)
        )

    def test_object_dtype_rejected(self):
        import numpy as np

        tagged = np.array([object()], dtype=object)
        with pytest.raises(EngineError):
            stable_hash(tagged)


def test_unknown_types_still_rejected():
    # The closed-set contract survives the buffer extensions: foreign
    # objects raise rather than hash by identity.
    with pytest.raises(EngineError):
        stable_hash(object())

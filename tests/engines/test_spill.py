"""Tests for the memory-budgeted out-of-core spill layer.

Covers the :class:`~repro.engines.spill.SpillManager` contract: the
budget is a *host* resource — evictions, reloads, external merges, and
file-backed shuffles must never change results, ``simulated_seconds``,
or fault schedules.  Only wall clock and the ``spill_*`` counters move.
"""

from array import array
from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import AlgebraSpec, Attr, Ref
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.columnar import (
    HAS_NUMPY,
    ColumnBatch,
    ColumnSchema,
    PyColumn,
    StrColumn,
    _np,
    batch_from_records,
)
from repro.engines.costmodel import CostModel
from repro.engines.metrics import Metrics
from repro.engines.sparklike import SparkLikeEngine
from repro.engines.spill import (
    CODEC_BATCH,
    CODEC_PICKLE,
    SpilledPartition,
    SpillFileRef,
    decode_payload,
    default_memory_budget,
    dump_batch,
    encode_payload,
    load_batch,
    load_payload_file,
)
from repro.errors import EngineError, SimulatedMemoryError
from repro.lowering.combinators import (
    CBagRef,
    CFold,
    CGroupBy,
    ScalarFn,
)


@dataclass(frozen=True)
class R:
    k: int
    v: int


def engine(**kwargs) -> SparkLikeEngine:
    kwargs.setdefault("cluster", ClusterConfig(num_workers=4))
    return SparkLikeEngine(**kwargs)


def sum_plan(name: str = "d") -> CFold:
    return CFold(spec=AlgebraSpec("sum"), input=CBagRef(name=name))


class TestDefaultMemoryBudget:
    def test_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        assert default_memory_budget() == 0

    def test_parses_byte_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", " 65536 ")
        assert default_memory_budget() == 65536

    def test_rejects_non_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "lots")
        with pytest.raises(EngineError, match="not an integer"):
            default_memory_budget()

    def test_rejects_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "-1")
        with pytest.raises(EngineError, match="must be >= 0"):
            default_memory_budget()

    def test_engine_rejects_negative_budget(self):
        with pytest.raises(EngineError, match="must be >= 0"):
            engine(memory_budget=-5)


class TestPayloadCodecs:
    def test_rows_round_trip_via_pickle(self):
        rows = [R(1, 2), R(3, 4)]
        codec, buf = encode_payload(rows)
        assert codec == CODEC_PICKLE
        assert decode_payload(codec, buf) == rows

    def test_batch_round_trips_typed_buffers(self):
        batch, reason = batch_from_records([R(1, 10), R(2, 20), R(3, 30)])
        assert batch is not None, reason
        codec, buf = encode_payload(batch)
        assert codec == CODEC_BATCH
        out = decode_payload(codec, buf)
        assert isinstance(out, ColumnBatch)
        assert out.schema.signature() == batch.schema.signature()
        assert out.to_records() == batch.to_records()
        # Typed dump, not a row pickle: column types survive exactly.
        for orig, back in zip(batch.columns, out.columns):
            assert type(back) is type(orig)

    def test_batch_dump_covers_every_column_kind(self):
        cols = [array("d", [1.5, 2.5]), PyColumn([{"a": 1}, None]), None]
        fields = ["f_arr", "f_py", "f_none"]
        if HAS_NUMPY:
            cols.append(_np.asarray([7, 8]))
            cols.append(StrColumn(_np.asarray(["ab", "cdé"])))
            fields += ["f_np", "f_str"]
        schema = ColumnSchema("tuple", tuple(fields))
        batch = ColumnBatch(schema, tuple(cols), 2)
        out = load_batch(dump_batch(batch))
        assert out.nrows == 2
        for orig, back in zip(batch.columns, out.columns):
            assert type(back) is type(orig)
            if orig is not None:
                assert back.tolist() == orig.tolist()

    def test_plain_object_column_falls_back_to_pickle(self):
        # A bare list column has no typed buffer: it must still survive.
        schema = ColumnSchema("scalar", ("_0",))
        batch = ColumnBatch(schema, ([1, "two", 3.0],), 3)
        out = load_batch(dump_batch(batch))
        assert list(out.columns[0]) == [1, "two", 3.0]


class TestSpilledPartitionSentinel:
    def test_len_is_cheap_and_correct(self):
        assert len(SpilledPartition(42)) == 42

    def test_reads_fail_loudly(self):
        part = SpilledPartition(3)
        with pytest.raises(EngineError, match="spilled partition"):
            list(part)
        with pytest.raises(EngineError, match="spilled partition"):
            part[0]


class TestCacheSpillRoundTrip:
    def _cached_sum(self, budget):
        eng = engine(memory_budget=budget)
        handle = eng.cache(DataBag(list(range(400))))
        total = eng.run_scalar(sum_plan(), {"d": handle})
        return eng, handle, total

    def test_spill_and_reload_preserve_results_and_time(self):
        base_eng, _, base_total = self._cached_sum(0)
        eng, handle, total = self._cached_sum(1024)
        assert total == base_total == sum(range(400))
        m = eng.metrics
        assert m.partitions_spilled > 0
        assert m.partitions_reloaded > 0
        assert m.spill_bytes_written > 0
        assert m.spill_bytes_read > 0
        # The invariant: spilling is invisible to the simulation.
        assert m.simulated_seconds == base_eng.metrics.simulated_seconds

    def test_eviction_is_deterministic(self):
        runs = [self._cached_sum(1024)[0].metrics for _ in range(2)]
        for field in (
            "partitions_spilled",
            "partitions_reloaded",
            "spill_bytes_written",
            "spill_bytes_read",
            "budget_evictions",
        ):
            assert getattr(runs[0], field) == getattr(runs[1], field)

    def test_sentinels_never_escape_cache_reads(self):
        eng, handle, _ = self._cached_sum(1024)
        # The job boundary re-evicted the handle; a fresh read must
        # reload every spilled partition before the operators see the
        # bag (a sentinel reaching an operator raises EngineError).
        reloaded = eng.metrics.partitions_reloaded
        assert eng.run_scalar(sum_plan(), {"d": handle}) == sum(
            range(400)
        )
        assert eng.metrics.partitions_reloaded > reloaded
        # And after the job the budget is enforced again: the handle
        # is back out of memory rather than silently resident.
        assert any(
            isinstance(p, SpilledPartition)
            for p in handle.bag.partitions
        )

    def test_unlimited_budget_never_spills(self):
        eng, _, _ = self._cached_sum(0)
        assert eng.metrics.partitions_spilled == 0
        assert eng.metrics.budget_evictions == 0
        assert eng.dfs.spill_file_count() == 0

    def test_spill_files_live_on_the_spill_tier(self):
        eng, handle, _ = self._cached_sum(1024)
        assert eng.dfs.spill_file_count() > 0

    def test_mid_run_budget_squeeze_engages_instantly(self):
        eng = engine(memory_budget=0)
        handle = eng.cache(DataBag(list(range(400))))
        assert eng.metrics.partitions_spilled == 0
        eng.configure_memory(512)  # the MEMORY_SQUEEZE path
        assert eng.metrics.partitions_spilled > 0
        assert eng.run_scalar(sum_plan(), {"d": handle}) == sum(
            range(400)
        )

    def test_exclusive_list_ownership_on_shared_bags(self):
        # Caching the same records twice must not let one handle's
        # eviction plant sentinels in the other's partition lists.
        eng = engine(memory_budget=0)
        h1 = eng.cache(DataBag(list(range(200))))
        assert eng.spill.tracks_any(h1.bag)
        h2 = eng.cache(DataBag(h1.bag.partitions[0]))
        assert h2.bag.partitions[0] is not h1.bag.partitions[0]


class TestExternalGroupMerge:
    def _grouping(self, budget, n=400):
        eng = engine(
            cost=CostModel(memory_per_worker=1024),
            memory_budget=budget,
        )
        plan = CGroupBy(
            key=ScalarFn(("x",), Attr(Ref("x"), "k")),
            input=CBagRef(name="xs"),
        )
        env = {"xs": DataBag([R(i % 5, i) for i in range(n)])}
        return eng, eng.collect(eng.defer(plan, env))

    def test_without_budget_the_hard_error_survives(self):
        with pytest.raises(SimulatedMemoryError) as info:
            self._grouping(0)
        err = info.value
        assert err.operator == "group_by"
        assert "group_by" in str(err)
        site = err.failure_site()
        assert "worker" in site and "partition" in site
        assert isinstance(err.metrics, Metrics)

    def test_budget_degrades_to_external_merge(self):
        eng, groups = self._grouping(1 << 20)
        by_key = {g.key: sorted(x.v for x in g.values) for g in groups}
        assert by_key == {
            k: [i for i in range(400) if i % 5 == k] for k in range(5)
        }
        m = eng.metrics
        assert m.external_merge_passes > 0
        assert m.spill_bytes_written > 0
        assert m.spill_bytes_read > 0

    def test_external_merge_charges_disk_not_memory(self):
        # The diverted partitions pay a sort+disk cost instead of
        # raising — simulated time must reflect that and stay
        # deterministic across runs.
        times = {self._grouping(1 << 20)[0].metrics.simulated_seconds
                 for _ in range(2)}
        assert len(times) == 1

    def test_fits_in_memory_never_merges_externally(self):
        eng = engine(memory_budget=1 << 20)
        plan = CGroupBy(
            key=ScalarFn(("x",), Attr(Ref("x"), "k")),
            input=CBagRef(name="xs"),
        )
        env = {"xs": DataBag([R(i % 3, i) for i in range(30)])}
        eng.collect(eng.defer(plan, env))
        assert eng.metrics.external_merge_passes == 0


class TestFileBackedShuffle:
    def test_small_payloads_ship_inline(self):
        eng = engine(memory_budget=1 << 20)
        payload, ref = eng.spill.ship_task_payload(
            ("spec",), list(range(10)), "t"
        )
        assert ref is None
        assert eng.metrics.spill_bytes_written == 0

    def test_large_payloads_ship_as_refs(self):
        eng = engine(memory_budget=1 << 20)
        data = [("pad%06d" % i * 8, i) for i in range(1000)]
        payload, ref = eng.spill.ship_task_payload(("spec",), data, "t")
        assert isinstance(ref, SpillFileRef)
        assert ref.codec == CODEC_PICKLE
        assert ref.nbytes >= eng.spill.shuffle_file_min_bytes
        # The IPC payload carries only the tiny ref.
        assert len(payload) < 1024
        assert eng.metrics.spill_bytes_written == ref.nbytes
        assert load_payload_file(ref) == data
        eng.spill.count_ref_read(ref)
        assert eng.metrics.spill_bytes_read == ref.nbytes
        eng.spill.delete_ref(ref)
        assert eng.dfs.spill_file_count() == 0

    def test_vanished_file_raises_engine_error(self):
        eng = engine(memory_budget=1 << 20)
        data = [("pad%06d" % i * 8, i) for i in range(1000)]
        _, ref = eng.spill.ship_task_payload(("spec",), data, "t")
        eng.spill.delete_ref(ref)
        with pytest.raises(EngineError, match="vanished"):
            load_payload_file(ref)


class TestSpillMetricsSurface:
    def test_summary_is_quiet_without_spills(self):
        eng = engine(memory_budget=0)
        eng.cache(DataBag([1, 2, 3]))
        assert "spill" not in eng.metrics.summary()

    def test_summary_reports_spill_counters(self):
        eng = engine(memory_budget=1024)
        handle = eng.cache(DataBag(list(range(400))))
        eng.run_scalar(sum_plan(), {"d": handle})
        s = eng.metrics.summary()
        assert "spill_w=" in s and "spill_r=" in s
        assert "ext_merges=" in s and "evictions=" in s

    def test_spill_events_attach_to_trace(self):
        eng = engine(memory_budget=1024)
        tracer = eng.enable_tracing()
        handle = eng.cache(DataBag(list(range(400))))
        eng.run_scalar(sum_plan(), {"d": handle})
        events = [e for s in tracer.spans() for e in s.events]
        evicts = [e for e in events if e.name == "spill:evict"]
        reloads = [e for e in events if e.name == "spill:reload"]
        assert evicts and evicts[0].attrs["kind"] == "cache-partition"
        assert reloads and "bytes" in reloads[0].attrs

    def test_squeeze_event_attaches_to_trace(self):
        from repro.engines.faults import FaultEvent, MEMORY_SQUEEZE, FaultPlan

        eng = engine(
            fault_plan=FaultPlan(
                events=(FaultEvent(MEMORY_SQUEEZE, task=1, budget=2048),)
            )
        )
        tracer = eng.enable_tracing()
        handle = eng.cache(DataBag(list(range(400))))
        eng.run_scalar(sum_plan(), {"d": handle})
        events = [e for s in tracer.spans() for e in s.events]
        squeezes = [
            e for e in events if e.name == "fault:memory_squeeze"
        ]
        assert squeezes and squeezes[0].attrs["budget"] == 2048
        assert eng.spill.limit == 2048

    def test_explain_mentions_the_budget(self):
        from repro.api import parallelize
        from repro.optimizer.pipeline import EmmaConfig

        @parallelize
        def doubles(xs):
            return [x * 2 for x in xs]

        text = doubles.explain(
            config=EmmaConfig(memory_budget=4096)
        )
        assert "budget=4096B" in text
        assert "spill=lru-to-disk" in text

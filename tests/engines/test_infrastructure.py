"""Tests for engine infrastructure: metrics, sizes, DFS, cluster."""

from dataclasses import dataclass

import pytest

from repro.engines.cluster import (
    ClusterConfig,
    PartitionedBag,
    Partitioner,
    hash_partition_index,
)
from repro.engines.costmodel import CostModel
from repro.engines.dfs import SimulatedDFS
from repro.engines.metrics import JobRun, Metrics
from repro.engines.sizes import (
    estimate_bag_bytes,
    estimate_batch_bytes,
    estimate_column_bytes,
    estimate_record_bytes,
)
from repro.errors import EngineError
from repro.lowering.combinators import ScalarFn


@dataclass(frozen=True)
class Rec:
    a: int
    b: str


class TestMetrics:
    def test_snapshot_and_delta(self):
        m = Metrics()
        m.shuffle_bytes = 100
        snap = m.snapshot()
        m.shuffle_bytes = 250
        delta = m.delta_since(snap)
        assert delta.shuffle_bytes == 150

    def test_summary_is_compact(self):
        line = Metrics().summary()
        assert "t=" in line and "shuffle=" in line

    def test_job_time_is_max_worker_plus_overheads(self):
        m = Metrics()
        job = JobRun(num_workers=2, metrics=m)
        job.charge_worker(0, 1.0)
        job.charge_worker(1, 3.0)
        job.charge_driver(0.5)
        job.add_stage()
        t = job.finish(fixed_overhead=0.1, stage_overhead=0.2)
        assert t == pytest.approx(0.1 + 0.2 + 3.0 + 0.5)
        assert m.simulated_seconds == pytest.approx(t)
        assert m.jobs_submitted == 1

    def test_charge_spread_divides_across_workers(self):
        m = Metrics()
        job = JobRun(num_workers=4, metrics=m)
        job.charge_spread(4.0)
        assert job.worker_seconds == [1.0] * 4

    def test_worker_index_wraps(self):
        job = JobRun(num_workers=2, metrics=Metrics())
        job.charge_worker(5, 1.0)
        assert job.worker_seconds[1] == 1.0


class TestCostModel:
    def test_converters(self):
        cm = CostModel(
            network_bandwidth=100.0,
            disk_bandwidth=50.0,
            cpu_throughput=10.0,
        )
        assert cm.network_seconds(200) == pytest.approx(2.0)
        assert cm.disk_seconds(100) == pytest.approx(2.0)
        assert cm.cpu_seconds(5) == pytest.approx(0.5)

    def test_defaults_sane(self):
        cm = CostModel()
        assert cm.dfs_write_bandwidth < cm.dfs_read_bandwidth
        assert cm.memory_per_worker > 0


class TestSizes:
    def test_primitives(self):
        assert estimate_record_bytes(1) == 8
        assert estimate_record_bytes(1.5) == 8
        assert estimate_record_bytes(True) == 1
        assert estimate_record_bytes(None) == 1
        assert estimate_record_bytes("abcd") == 8

    def test_containers_recursive(self):
        assert estimate_record_bytes((1, 2)) > 16
        assert estimate_record_bytes({"k": 1}) > 8

    def test_dataclass(self):
        assert estimate_record_bytes(Rec(1, "xy")) >= 8 + 6

    def test_bigger_strings_cost_more(self):
        small = estimate_record_bytes(Rec(1, "x"))
        big = estimate_record_bytes(Rec(1, "x" * 100))
        assert big > small + 90

    def test_bag_sampling_extrapolates(self):
        records = [Rec(i, "abc") for i in range(1000)]
        total = estimate_bag_bytes(records)
        per_record = estimate_record_bytes(records[0])
        assert total == pytest.approx(per_record * 1000, rel=0.05)

    def test_empty_bag(self):
        assert estimate_bag_bytes([]) == 0

    def test_tuple_estimates_pinned(self):
        # 8 overhead + two 8-byte ints
        assert estimate_record_bytes((1, 2)) == 24
        # 8 overhead + two nested (1, 2)-shaped tuples
        assert estimate_record_bytes(((1, 2), (3, 4))) == 56

    def test_dict_estimate_pinned(self):
        # 8 overhead + key "a" (4 + 1) + value tuple (24)
        assert estimate_record_bytes({"a": (1, 2)}) == 37

    def test_depth_cap_spares_scalars(self):
        # Scalars keep their type-dispatched width at any depth; the
        # cap only truncates recursion into containers.
        deep_bool = True
        deep_str = "x" * 100
        for _ in range(7):
            deep_bool = [deep_bool]
            deep_str = [deep_str]
        assert estimate_record_bytes(deep_bool) == 7 * 8 + 1
        assert estimate_record_bytes(deep_str) == 7 * 8 + 104
        # Containers past the cap still collapse to the overhead.
        capped = [1]
        for _ in range(10):
            capped = [capped]
        assert estimate_record_bytes(capped) == 8 * 8

    def test_column_bytes(self):
        assert estimate_column_bytes([]) == 0
        assert estimate_column_bytes([1.5] * 10) == 80
        # Long columns extrapolate from the sampled prefix.
        assert estimate_column_bytes([1.0] * 1000) == pytest.approx(
            8000, rel=0.01
        )
        # Strings are content-sized, like in record estimates.
        assert estimate_column_bytes(["ab", "cdef"]) == (4 + 2) + (4 + 4)

    def test_batch_bytes(self):
        assert estimate_batch_bytes((), 0) == 0
        assert estimate_batch_bytes((8, 8), 2) == 8 + 16


class TestDfs:
    def test_put_get(self):
        dfs = SimulatedDFS()
        stored = dfs.put("a/b", [Rec(1, "x")])
        assert stored.nbytes > 0
        assert dfs.get("a/b").records == [Rec(1, "x")]

    def test_missing_path_raises(self):
        with pytest.raises(EngineError, match="no such"):
            SimulatedDFS().get("nope")

    def test_exists_delete_listdir(self):
        dfs = SimulatedDFS()
        dfs.put("x", [1])
        dfs.put("y", [2])
        assert dfs.exists("x")
        assert dfs.listdir() == ["x", "y"]
        dfs.delete("x")
        assert not dfs.exists("x")
        assert dfs.total_bytes() == dfs.get("y").nbytes


class TestPartitionedBag:
    def test_round_robin_distribution(self):
        bag = PartitionedBag.from_records(range(10), 3)
        assert bag.num_partitions == 3
        assert bag.count() == 10
        assert sorted(bag.collect()) == list(range(10))

    def test_by_key_places_equal_keys_together(self):
        key_ir = ScalarFn.identity()
        bag = PartitionedBag.by_key(
            [1, 1, 2, 2, 3], lambda x: x, key_ir, 4
        )
        for p in bag.partitions:
            # all copies of a key share a partition
            pass
        idx = hash_partition_index(1, 4)
        assert bag.partitions[idx].count(1) == 2
        assert bag.partitioner is not None
        assert bag.partitioner.matches(key_ir, 4)

    def test_partitioner_matching_is_alpha_insensitive(self):
        from repro.comprehension.exprs import Attr, Ref

        p = Partitioner(ScalarFn(("a",), Attr(Ref("a"), "k")), 4)
        assert p.matches(ScalarFn(("b",), Attr(Ref("b"), "k")), 4)
        assert not p.matches(ScalarFn(("b",), Attr(Ref("b"), "k")), 8)

    def test_copy_is_independent(self):
        bag = PartitionedBag([[1], [2]])
        clone = bag.copy()
        clone.partitions[0].append(99)
        assert bag.partitions[0] == [1]

    def test_cluster_parallelism_defaults_to_workers(self):
        assert ClusterConfig(num_workers=6).parallelism == 6
        assert (
            ClusterConfig(num_workers=6, default_parallelism=12).parallelism
            == 12
        )

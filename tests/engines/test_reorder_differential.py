"""Differential guarantees for UDF-aware reordering (PR 8).

The reordering pass is a pure compile-time rewrite: with it on or off,
every execution mode — serial, threaded, process-pool, with or without
aggressive fault injection — must produce ``repr``-identical results.
What *may* change is data motion: on the UDF-styled TPC-H Q4 the pass
must strictly lower ``shuffle_bytes`` by pushing all three pair
filters below the orders × lineitems join.
"""

import pytest

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.tpch import stage_tpch, tpch_q4, tpch_q4_udf

MODES = ("serial", "threads", "processes")

#: Small enough that neither the raw nor the filtered build side can
#: be broadcast: both configurations realize the join by
#: repartitioning, the regime where pushdown removes shuffled bytes.
THRESHOLD = 512

REORDER_ON = EmmaConfig(udf_reordering="auto")
REORDER_OFF = EmmaConfig(udf_reordering="off")

Q4_PARAMS = dict(
    date_min="1994-01-01",
    date_max="1994-07-01",
)


@pytest.fixture(scope="module")
def world():
    """Staged TPC-H relations shared by every case in this module."""
    dfs = SimulatedDFS()
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.05)
    return {
        "dfs": dfs,
        "orders": orders_path,
        "lineitem": lineitem_path,
    }


def _engine(world, mode="serial", fault_plan=None):
    engine = SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4),
        dfs=world["dfs"],
        execution_mode=mode,
        max_parallel_tasks=2,
        fault_plan=fault_plan,
    )
    engine.broadcast_join_threshold = THRESHOLD
    return engine


def _run_q4_udf(world, config, mode="serial", fault_plan=None):
    engine = _engine(world, mode, fault_plan)
    result = tpch_q4_udf.run(
        engine,
        config=config,
        orders_path=world["orders"],
        lineitem_path=world["lineitem"],
        **Q4_PARAMS,
    )
    records = result.fetch() if hasattr(result, "fetch") else result
    return [repr(r) for r in records], engine


class TestBitIdenticalOnVsOff:
    @pytest.mark.parametrize("mode", MODES)
    def test_same_records_every_mode(self, world, mode):
        on_records, _ = _run_q4_udf(world, REORDER_ON, mode)
        off_records, _ = _run_q4_udf(world, REORDER_OFF, mode)
        assert on_records == off_records

    @pytest.mark.parametrize("mode", MODES)
    def test_same_records_under_aggressive_faults(self, world, mode):
        plan = FaultPlan.aggressive()
        on_records, _ = _run_q4_udf(world, REORDER_ON, mode, plan)
        off_records, _ = _run_q4_udf(world, REORDER_OFF, mode, plan)
        assert on_records == off_records

    def test_udf_variant_matches_classic_q4(self, world):
        """The imperative UDF phrasing computes exactly TPC-H Q4."""
        udf_records, _ = _run_q4_udf(world, REORDER_ON)
        engine = _engine(world)
        classic = tpch_q4.run(
            engine,
            orders_path=world["orders"],
            lineitem_path=world["lineitem"],
            **Q4_PARAMS,
        )
        classic_records = [repr(r) for r in classic.fetch()]
        assert sorted(udf_records) == sorted(classic_records)


class TestShuffleReduction:
    def test_pushdown_strictly_lowers_shuffle_bytes(self, world):
        _, on_engine = _run_q4_udf(world, REORDER_ON)
        _, off_engine = _run_q4_udf(world, REORDER_OFF)
        assert (
            on_engine.metrics.shuffle_bytes
            < off_engine.metrics.shuffle_bytes
        )

    def test_metrics_copied_onto_engine(self, world):
        _, on_engine = _run_q4_udf(world, REORDER_ON)
        assert on_engine.metrics.reorders_applied >= 3
        assert on_engine.metrics.udfs_analyzed >= on_engine.metrics.reorders_applied
        _, off_engine = _run_q4_udf(world, REORDER_OFF)
        assert off_engine.metrics.reorders_applied == 0
        assert off_engine.metrics.udfs_analyzed == 0


class TestExplainMarkers:
    def test_on_plan_annotates_pushed_filters(self, world):
        plan = tpch_q4_udf.explain(REORDER_ON)
        assert "pushed-below-join" in plan

    def test_off_plan_has_no_markers(self, world):
        plan = tpch_q4_udf.explain(REORDER_OFF)
        assert "pushed-below-join" not in plan

    def test_report_counters(self, world):
        report = tpch_q4_udf.report(REORDER_ON)
        assert report.reorders_applied >= 3
        assert report.udf_reordering_applied
        off = tpch_q4_udf.report(REORDER_OFF)
        assert off.reorders_applied == 0
        assert not off.udf_reordering_applied

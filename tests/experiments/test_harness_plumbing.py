"""Fast tests for the experiment-harness plumbing.

The full experiments run in the benchmark suite; these tests cover the
shared infrastructure (budget/DNF classification, speedup math, result
rendering) and the cheap Table 1 harness at unit speed.
"""

import pytest

from repro.engines.dfs import SimulatedDFS
from repro.experiments.figure4 import CONFIGURATIONS, Figure4Result, Figure4Scale
from repro.experiments.runner import (
    DNF,
    ExperimentResult,
    bench_cost_model,
    make_engine,
    run_with_budget,
    speedup,
)
from repro.experiments.table1 import PAPER_TABLE_1, run_table1


class TestRunner:
    def test_bench_cost_model_overrides(self):
        cm = bench_cost_model(cpu_throughput=123.0)
        assert cm.cpu_throughput == 123.0
        assert cm.network_bandwidth > 0

    def test_make_engine_kinds(self):
        dfs = SimulatedDFS()
        spark = make_engine("spark", dfs, num_workers=3)
        flink = make_engine("flink", dfs)
        assert spark.name == "spark"
        assert spark.cluster.num_workers == 3
        assert flink.name == "flink"
        assert spark.dfs is flink.dfs is dfs

    def test_make_engine_overrides(self):
        engine = make_engine(
            "spark",
            SimulatedDFS(),
            broadcast_join_threshold=7,
            task_overhead=0.5,
        )
        assert engine.broadcast_join_threshold == 7
        assert engine.task_overhead == 0.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            make_engine("dryad", SimulatedDFS())

    def test_run_with_budget_success(self):
        from repro.workloads.groupagg import group_min

        dfs = SimulatedDFS()
        from repro.workloads.datagen import stage_keyed_tuples

        path = stage_keyed_tuples(dfs, 100, 5, "uniform")
        engine = make_engine("spark", dfs)
        result = run_with_budget(
            engine, group_min, None, tuples_path=path
        )
        assert result.finished
        assert result.seconds > 0

    def test_run_with_budget_classifies_timeout_as_dnf(self):
        from repro.workloads.groupagg import group_min
        from repro.workloads.datagen import stage_keyed_tuples

        dfs = SimulatedDFS()
        path = stage_keyed_tuples(dfs, 100, 5, "uniform")
        engine = make_engine("spark", dfs, time_budget=1e-9)
        result = run_with_budget(
            engine, group_min, None, tuples_path=path
        )
        assert result.seconds is DNF
        assert not result.finished
        assert result.extra["failure"] == "SimulatedTimeout"

    def test_speedup_math(self):
        base = ExperimentResult("spark", "baseline", 10.0)
        fast = ExperimentResult("spark", "opt", 2.0)
        dead = ExperimentResult("spark", "dead", DNF)
        assert speedup(base, fast) == pytest.approx(5.0)
        assert speedup(base, dead) == 0.0
        assert speedup(dead, fast) == float("inf")

    def test_result_repr(self):
        assert "DNF" in repr(ExperimentResult("spark", "x", DNF))
        assert "1.500s" in repr(ExperimentResult("spark", "x", 1.5))


class TestFigure4Plumbing:
    def test_configuration_set_matches_paper(self):
        assert set(CONFIGURATIONS) == {
            "baseline",
            "unnesting",
            "unnesting+partitioning",
            "unnesting+caching",
            "unnesting+partitioning+caching",
        }
        assert not CONFIGURATIONS["baseline"].unnesting
        assert CONFIGURATIONS["unnesting+caching"].caching
        assert not CONFIGURATIONS[
            "unnesting+caching"
        ].partition_pulling

    def test_speedups_and_rows(self):
        result = Figure4Result(scale=Figure4Scale())
        result.runs["spark"] = {
            "baseline": ExperimentResult("spark", "baseline", 10.0),
            "unnesting": ExperimentResult("spark", "unnesting", 5.0),
        }
        assert result.speedups("spark") == {"unnesting": 2.0}
        (row,) = result.rows()
        assert row[:3] == ("spark", "unnesting", 2.0)
        assert "Figure 4" in result.render()


class TestTable1Harness:
    def test_runs_and_matches_paper(self):
        result = run_table1()
        assert result.matches_paper()
        text = result.render()
        assert "k-means" in text
        assert "NO" not in text.replace("NO  ", "")  # only yes rows

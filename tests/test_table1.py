"""Reproduction of Table 1: which optimizations apply to which program.

The paper's Table 1 lists, for each evaluated program, the
optimizations that apply (marked X).  Here the *compiler itself* is the
oracle: compiling each workload and reading the optimization report
must reproduce the table exactly.

| Program          | Unnesting | Group Fusion | Cache | Partition Pulling |
|------------------|-----------|--------------|-------|-------------------|
| Spam workflow    |     X     |      x       |   X   |         X         |
| k-means          |     x     |      X       |   X   |         x         |
| PageRank         |     x     |      X       |   X   |         x         |
| TPC-H Q1         |     x     |      X       |   x   |         x         |
| TPC-H Q4         |     X     |      X       |   x   |         x         |
"""

import pytest

from repro.workloads.connected_components import connected_components
from repro.workloads.groupagg import group_min
from repro.workloads.kmeans import kmeans
from repro.workloads.pagerank import pagerank
from repro.workloads.spam import select_classifier
from repro.workloads.tpch import tpch_q1, tpch_q4

PAPER_TABLE_1 = {
    "spam_workflow": {
        "unnesting": True,
        "fold_group_fusion": False,
        "caching": True,
        "partition_pulling": True,
    },
    "kmeans": {
        "unnesting": False,
        "fold_group_fusion": True,
        "caching": True,
        "partition_pulling": False,
    },
    "pagerank": {
        "unnesting": False,
        "fold_group_fusion": True,
        "caching": True,
        "partition_pulling": False,
    },
    "tpch_q1": {
        "unnesting": False,
        "fold_group_fusion": True,
        "caching": False,
        "partition_pulling": False,
    },
    "tpch_q4": {
        "unnesting": True,
        "fold_group_fusion": True,
        "caching": False,
        "partition_pulling": False,
    },
}

ALGORITHMS = {
    "spam_workflow": select_classifier,
    "kmeans": kmeans,
    "pagerank": pagerank,
    "tpch_q1": tpch_q1,
    "tpch_q4": tpch_q4,
}


@pytest.mark.parametrize("program", sorted(PAPER_TABLE_1))
def test_table1_row(program):
    report = ALGORITHMS[program].report()
    assert report.table1_row() == PAPER_TABLE_1[program], program


def test_table1_renders():
    """The full matrix, as a sanity-check artifact."""
    rows = {
        name: algo.report().table1_row()
        for name, algo in ALGORITHMS.items()
    }
    assert rows == PAPER_TABLE_1


def test_additional_programs_have_sensible_reports():
    cc = connected_components.report()
    assert cc.fold_group_fusion_applied
    gm = group_min.report()
    assert gm.fold_group_fusion_applied
    assert not gm.unnesting_applied

"""Smoke tests: every example script must run to completion.

Examples are part of the public deliverable; each one asserts its own
correctness internally (oracle comparisons), so a clean exit is a
meaningful check.  They run as subprocesses to exercise the real
`python examples/<name>.py` path, including source lifting from files.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES
    assert "tracing_walkthrough.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{name} produced no output"

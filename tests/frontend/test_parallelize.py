"""Tests for the @parallelize decorator and the Algorithm object."""

from dataclasses import dataclass

import pytest

from repro.api import (
    DataBag,
    EmmaConfig,
    EmmaError,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
    parallelize,
)


@dataclass(frozen=True)
class Pair:
    k: int
    v: int


@parallelize
def doubler(xs: DataBag):
    return xs.map(lambda x: x * 2)


@parallelize
def sum_positive(xs: DataBag):
    positives = (x for x in xs if x > 0)
    return positives.sum()


@parallelize
def loopy(xs: DataBag, rounds):
    total = 0
    i = 0
    while i < rounds:
        total = total + xs.sum()
        i = i + 1
    return total


@parallelize(bags=("xs",))
def with_bags_argument(xs):
    return xs.count()


@parallelize
def join_pairs(xs: DataBag, ys: DataBag):
    return ((x.v, y.v) for x in xs for y in ys if x.k == y.k)


@parallelize
def branching(xs: DataBag, flag):
    if flag:
        result = xs.map(lambda x: x + 1)
    else:
        result = xs.map(lambda x: x - 1)
    return result


@parallelize
def returns_nothing(xs: DataBag):
    y = xs.count()
    return None


class TestAlgorithmApi:
    def test_name_and_params(self):
        assert doubler.name == "doubler"
        assert doubler.params == ("xs",)

    def test_repr(self):
        assert "doubler" in repr(doubler)

    def test_missing_parameter_rejected(self):
        with pytest.raises(EmmaError, match="missing"):
            doubler.run(LocalEngine())

    def test_unexpected_parameter_rejected(self):
        with pytest.raises(EmmaError, match="unexpected"):
            doubler.run(LocalEngine(), xs=DataBag([1]), oops=1)

    def test_compiled_is_cached_per_config(self):
        c1 = doubler.compiled()
        c2 = doubler.compiled()
        assert c1 is c2
        c3 = doubler.compiled(EmmaConfig.none())
        assert c3 is not c1

    def test_explain_mentions_plans(self):
        text = doubler.explain()
        assert "site" in text

    def test_report_exposes_table1_row(self):
        row = sum_positive.report().table1_row()
        assert set(row) == {
            "unnesting",
            "fold_group_fusion",
            "caching",
            "partition_pulling",
        }

    def test_default_engine_is_local(self):
        result = doubler.run(xs=DataBag([1, 2]))
        assert result == DataBag([2, 4])


class TestExecutionAcrossBackends:
    @pytest.mark.parametrize(
        "engine_factory",
        [LocalEngine, SparkLikeEngine, FlinkLikeEngine],
        ids=["local", "spark", "flink"],
    )
    def test_map(self, engine_factory):
        result = doubler.run(engine_factory(), xs=DataBag([1, 2, 3]))
        assert result == DataBag([2, 4, 6])

    @pytest.mark.parametrize(
        "engine_factory",
        [LocalEngine, SparkLikeEngine, FlinkLikeEngine],
        ids=["local", "spark", "flink"],
    )
    def test_scalar_fold(self, engine_factory):
        result = sum_positive.run(
            engine_factory(), xs=DataBag([-1, 2, 3])
        )
        assert result == 5

    @pytest.mark.parametrize(
        "engine_factory",
        [LocalEngine, SparkLikeEngine, FlinkLikeEngine],
        ids=["local", "spark", "flink"],
    )
    def test_loop(self, engine_factory):
        result = loopy.run(
            engine_factory(), xs=DataBag([1, 2]), rounds=3
        )
        assert result == 9

    @pytest.mark.parametrize(
        "engine_factory",
        [LocalEngine, SparkLikeEngine, FlinkLikeEngine],
        ids=["local", "spark", "flink"],
    )
    def test_join(self, engine_factory):
        xs = DataBag([Pair(1, 10), Pair(2, 20)])
        ys = DataBag([Pair(1, 100), Pair(1, 101), Pair(3, 300)])
        result = join_pairs.run(engine_factory(), xs=xs, ys=ys)
        assert result == DataBag([(10, 100), (10, 101)])

    @pytest.mark.parametrize(
        "engine_factory",
        [LocalEngine, SparkLikeEngine, FlinkLikeEngine],
        ids=["local", "spark", "flink"],
    )
    def test_branches(self, engine_factory):
        xs = DataBag([10])
        assert branching.run(
            engine_factory(), xs=xs, flag=True
        ) == DataBag([11])
        assert branching.run(
            engine_factory(), xs=xs, flag=False
        ) == DataBag([9])

    def test_bags_argument_variant(self):
        assert (
            with_bags_argument.run(
                SparkLikeEngine(), xs=DataBag([1, 2, 3])
            )
            == 3
        )

    def test_none_return(self):
        assert (
            returns_nothing.run(SparkLikeEngine(), xs=DataBag([1]))
            is None
        )


class TestConfigEffects:
    def test_baseline_config_produces_same_results(self):
        xs = DataBag([Pair(1, 10), Pair(2, 20)])
        ys = DataBag([Pair(1, 100)])
        optimized = join_pairs.run(SparkLikeEngine(), xs=xs, ys=ys)
        baseline = join_pairs.run(
            SparkLikeEngine(), config=EmmaConfig.none(), xs=xs, ys=ys
        )
        assert optimized == baseline

    def test_config_labels(self):
        assert EmmaConfig.none().label() == "baseline"
        assert "fold-group-fusion" in EmmaConfig.all().label()

"""Additional lifter edge cases: dispatch ambiguity, annotations,
module-qualified intrinsics, scoping."""

from dataclasses import dataclass

import pytest

import repro.api as emma
from repro.api import DataBag, LocalEngine, SparkLikeEngine
from repro.comprehension.exprs import (
    Call,
    Env,
    FoldCall,
    MapCall,
    ReadCall,
)
from repro.errors import LiftError
from repro.frontend.lift import lift_function


@dataclass(frozen=True)
class Rec:
    k: int
    words: str


class TestAnnotations:
    def test_string_annotation_recognized(self):
        def f(xs: "DataBag"):
            return xs.map(lambda x: x)

        lifted = lift_function(f)
        assert "xs" in lifted.program.bag_params

    def test_generic_annotation_recognized(self):
        def f(xs: "DataBag[int]"):
            return xs.count()

        lifted = lift_function(f)
        assert "xs" in lifted.program.bag_params

    def test_unannotated_param_is_scalar(self):
        def f(xs):
            return xs

        lifted = lift_function(f)
        assert not lifted.program.bag_params


class TestModuleQualifiedIntrinsics:
    def test_emma_dot_read(self):
        def f(path, fmt):
            return emma.read(path, fmt)

        lifted = lift_function(f)
        assert isinstance(lifted.program.body[0].value, ReadCall)


class TestDispatchAmbiguity:
    def test_count_with_argument_stays_opaque(self):
        # str.count(sub) has an argument; the bag alias takes none.
        def f(s):
            return s.count("x")

        lifted = lift_function(f)
        assert isinstance(lifted.program.body[0].value, Call)

    def test_method_on_constant_stays_opaque(self):
        def f():
            return "hello".distinct() if False else 1

        # `"hello".distinct()` would be nonsense at runtime, but the
        # lifter must not treat a Const receiver as a bag.
        lifted = lift_function(f)
        assert lifted is not None

    def test_sum_on_group_values_chain(self):
        def f(xs: DataBag):
            return (
                g.values.map(lambda r: r.k).sum()
                for g in xs.group_by(lambda r: r.words)
            )

        lifted = lift_function(f)
        comp = lifted.program.body[0].value
        assert isinstance(comp.head, FoldCall)
        assert isinstance(comp.head.source, MapCall)

    def test_scalar_reassignment_downgrades_method_dispatch(self):
        # After `xs = 5`, xs.map(...) must not lift as a bag operator.
        def f(xs: DataBag, transform):
            xs = 5
            return transform(xs)

        lifted = lift_function(f)
        ret = lifted.program.body[-1].value
        assert isinstance(ret, Call)


class TestScoping:
    def test_lambda_param_shadows_driver_name(self):
        def f(xs: DataBag, k):
            return xs.map(lambda k: k + 1)

        result = lift_function(f)
        # `k` the lambda parameter shadows `k` the driver parameter:
        # the program has no free use of the driver k beyond itself.
        comp_runs = DataBag([1, 2])
        from repro.frontend.parallelize import Algorithm

        algo = Algorithm(result)
        assert algo.run(LocalEngine(), xs=comp_runs, k=99) == DataBag(
            [2, 3]
        )

    def test_comprehension_var_shadows_outer(self):
        def f(xs: DataBag, x):
            return (x * 2 for x in xs)

        from repro.frontend.parallelize import Algorithm

        algo = Algorithm(lift_function(f))
        assert algo.run(
            SparkLikeEngine(), xs=DataBag([1, 2]), x=100
        ) == DataBag([2, 4])


class TestStatementErrors:
    def test_with_statement_rejected(self):
        def f(x):
            with open("f"):
                pass
            return x

        with pytest.raises(LiftError, match="With"):
            lift_function(f)

    def test_nested_def_rejected(self):
        def f(x):
            def g():
                return 1

            return g()

        with pytest.raises(LiftError, match="FunctionDef"):
            lift_function(f)

    def test_while_else_rejected(self):
        def f(x):
            while x:
                x = 0
            else:
                x = 1
            return x

        with pytest.raises(LiftError, match="while/else"):
            lift_function(f)

    def test_double_star_call_lifts_as_expansion_entry(self):
        # ``**mapping`` lifts as a ("**", expr) kwargs entry that
        # Call.evaluate splices back in at call time.
        def f(x, fn):
            return fn(a=1, **x)

        lifted = lift_function(f)
        ret = lifted.program.body[-1]
        call = ret.value
        assert ("**" in [k for k, _ in call.kwargs])
        assert call.evaluate(
            Env.of({"x": {"b": 2}, "fn": lambda a, b: a + b})
        ) == 3

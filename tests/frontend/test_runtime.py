"""Tests for the driver interpreter (direct and compiled paths)."""

from dataclasses import dataclass, replace

import pytest

from repro.api import (
    DataBag,
    EmmaConfig,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
    parallelize,
)
from repro.engines.dfs import SimulatedDFS


@dataclass(frozen=True)
class Item:
    id: int
    group: int
    value: float


@parallelize
def uses_host_for_and_if(xs: DataBag, labels):
    totals = 0.0
    for label in labels:
        subset = (x for x in xs if x.group == label)
        count = subset.count()
        if count > 0:
            totals = totals + count
        else:
            totals = totals - 1
    return totals


@parallelize
def reads_and_writes(in_path, out_path, fmt):
    data = read(in_path, fmt)  # noqa: F821 - intrinsic
    doubled = data.map(lambda x: x * 2)
    write(out_path, fmt, doubled)  # noqa: F821 - intrinsic
    return doubled.count()


@parallelize
def fetches(xs: DataBag):
    return xs.map(lambda x: x + 1).fetch()


@parallelize
def stateful_round_trip(xs: DataBag):
    state = stateful(xs)  # noqa: F821 - intrinsic
    state.update(
        lambda s: replace(s, value=s.value * 2) if s.id % 2 == 0 else None
    )
    return state.bag()


@parallelize
def nested_while(n):
    outer = 0
    i = 0
    while i < n:
        j = 0
        while j < i:
            outer = outer + 1
            j = j + 1
        i = i + 1
    return outer


ENGINES = [LocalEngine, SparkLikeEngine, FlinkLikeEngine]


@pytest.mark.parametrize("engine_factory", ENGINES, ids=["local", "spark", "flink"])
class TestControlFlow:
    def test_host_for_and_if(self, engine_factory):
        xs = DataBag(
            Item(i, i % 3, float(i)) for i in range(30)
        )
        result = uses_host_for_and_if.run(
            engine_factory(), xs=xs, labels=[0, 1, 2, 99]
        )
        assert result == 10 + 10 + 10 - 1

    def test_nested_while(self, engine_factory):
        assert nested_while.run(engine_factory(), n=5) == 10


@pytest.mark.parametrize("engine_factory", ENGINES, ids=["local", "spark", "flink"])
class TestIoAndConversion:
    def test_read_write_round_trip(self, engine_factory):
        engine = engine_factory()
        engine.dfs.put("in", [1, 2, 3])
        count = reads_and_writes.run(
            engine, in_path="in", out_path="out", fmt=None
        )
        assert count == 3
        assert sorted(engine.dfs.get("out").records) == [2, 4, 6]

    def test_fetch_returns_list(self, engine_factory):
        result = fetches.run(engine_factory(), xs=DataBag([1, 2]))
        assert sorted(result) == [2, 3]

    def test_stateful_round_trip(self, engine_factory):
        xs = DataBag(Item(i, 0, float(i)) for i in range(6))
        result = stateful_round_trip.run(engine_factory(), xs=xs)
        by_id = {s.id: s.value for s in result}
        assert by_id[2] == 4.0
        assert by_id[3] == 3.0


class TestCompiledSpecifics:
    def test_loop_cap_guards_against_nontermination(self):
        @parallelize
        def forever():
            i = 0
            while i < 1:
                i = i * 1  # never reaches 1
            return i

        import repro.frontend.runtime as rt

        old = rt._MAX_LOOP_ITERATIONS
        rt._MAX_LOOP_ITERATIONS = 50
        try:
            from repro.errors import EmmaError

            with pytest.raises(EmmaError, match="iteration cap"):
                forever.run(SparkLikeEngine())
            with pytest.raises(EmmaError, match="iteration cap"):
                forever.run(LocalEngine())
        finally:
            rt._MAX_LOOP_ITERATIONS = old

    def test_metrics_accumulate_across_statements(self):
        engine = SparkLikeEngine()
        uses_host_for_and_if.run(
            engine,
            xs=DataBag(Item(i, i % 2, 0.0) for i in range(10)),
            labels=[0, 1],
        )
        assert engine.metrics.jobs_submitted >= 2
        assert engine.metrics.simulated_seconds > 0

    def test_baseline_and_optimized_jobs_differ(self):
        xs = DataBag(Item(i, i % 3, float(i)) for i in range(30))
        optimized = SparkLikeEngine()
        uses_host_for_and_if.run(
            optimized, xs=xs, labels=[0, 1, 2]
        )
        baseline = SparkLikeEngine()
        uses_host_for_and_if.run(
            baseline,
            config=EmmaConfig.none(),
            xs=xs,
            labels=[0, 1, 2],
        )
        # Caching adds a materialization job in the optimized run.
        assert (
            optimized.metrics.jobs_submitted
            != baseline.metrics.jobs_submitted
        )

    def test_distinct_dfs_instances_are_isolated(self):
        a, b = SimulatedDFS(), SimulatedDFS()
        ea = SparkLikeEngine(dfs=a)
        eb = SparkLikeEngine(dfs=b)
        a.put("in", [1])
        b.put("in", [10, 20])
        assert (
            reads_and_writes.run(
                ea, in_path="in", out_path="o", fmt=None
            )
            == 1
        )
        assert (
            reads_and_writes.run(
                eb, in_path="in", out_path="o", fmt=None
            )
            == 2
        )


class TestPrettyProgram:
    def test_renders_driver_ir(self):
        from repro.frontend.driver_ir import pretty_program

        text = pretty_program(uses_host_for_and_if.lifted.program)
        assert text.startswith("def uses_host_for_and_if(")
        assert "for label in labels:" in text
        assert "if (count > 0):" in text
        assert "# bag" in text

    def test_renders_compiled_program_with_plans_and_caches(self):
        from repro.frontend.driver_ir import pretty_program

        compiled = uses_host_for_and_if.compiled()
        text = pretty_program(compiled.program)
        assert "<dataflow:scalar" in text
        assert "cache xs" in text

"""Tests for the Python -> driver IR lifter (the parallelize macro)."""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    FetchCall,
    FilterCall,
    FoldCall,
    GroupByCall,
    IfElse,
    Index,
    Lambda,
    MapCall,
    ReadCall,
    Ref,
    StatefulBagOf,
    StatefulCreate,
    StatefulUpdate,
    StatefulUpdateWithMessages,
    TupleExpr,
    UnaryOp,
    WriteCall,
)
from repro.comprehension.ir import Comprehension
from repro.core.databag import DataBag
from repro.errors import LiftError
from repro.frontend.driver_ir import (
    SAssign,
    SExpr,
    SFor,
    SIf,
    SReturn,
    SWhile,
)
from repro.frontend.lift import lift_function

GLOBAL_CONSTANT = 17


def _lift(fn, bags=None):
    return lift_function(fn, bag_params=bags)


class TestStatements:
    def test_assign_and_return(self):
        def f(x):
            y = x + 1
            return y

        lifted = _lift(f)
        stmts = lifted.program.body
        assert isinstance(stmts[0], SAssign)
        assert stmts[0].name == "y"
        assert isinstance(stmts[1], SReturn)

    def test_aug_assign_desugars(self):
        def f(x):
            x += 2
            return x

        lifted = _lift(f)
        assign = lifted.program.body[0]
        assert isinstance(assign.value, BinOp)
        assert assign.value.op == "+"

    def test_while_and_if(self):
        def f(n):
            i = 0
            while i < n:
                if i % 2 == 0:
                    i = i + 2
                else:
                    i = i + 1
            return i

        lifted = _lift(f)
        loop = lifted.program.body[1]
        assert isinstance(loop, SWhile)
        assert isinstance(loop.body[0], SIf)
        assert loop.body[0].orelse

    def test_host_for_loop(self):
        def f(items):
            total = 0
            for item in items:
                total = total + item
            return total

        lifted = _lift(f)
        loop = lifted.program.body[1]
        assert isinstance(loop, SFor)
        assert loop.var == "item"

    def test_for_over_databag_rejected(self):
        def f(xs: DataBag):
            for x in xs:
                pass
            return 0

        with pytest.raises(LiftError, match="comprehension"):
            _lift(f)

    def test_expression_statement(self):
        def f(x):
            print(x)
            return x

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0], SExpr)

    def test_unsupported_statement_rejected(self):
        def f(x):
            try:
                return x
            except ValueError:
                return 0

        with pytest.raises(LiftError, match="Try"):
            _lift(f)

    def test_tuple_assignment_rejected(self):
        def f(x):
            a, b = x, x
            return a

        with pytest.raises(LiftError, match="simple name"):
            _lift(f)


class TestExpressions:
    def test_arithmetic_comparison_bool(self):
        def f(a, b):
            return (a + b * 2) > 3 and not (a == b)

        lifted = _lift(f)
        ret = lifted.program.body[0].value
        assert isinstance(ret, BoolOp)
        assert isinstance(ret.operands[1], UnaryOp)

    def test_chained_comparison(self):
        def f(a):
            return 0 < a < 10

        lifted = _lift(f)
        ret = lifted.program.body[0].value
        assert isinstance(ret, BoolOp)
        assert all(isinstance(p, Compare) for p in ret.operands)

    def test_conditional_expression(self):
        def f(a):
            return 1 if a else 2

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, IfElse)

    def test_subscript(self):
        def f(t):
            return t[0]

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, Index)

    def test_slice_rejected(self):
        def f(t):
            return t[1:2]

        with pytest.raises(LiftError, match="slicing"):
            _lift(f)

    def test_lambda_with_defaults_rejected(self):
        def f(xs: DataBag):
            return xs.map(lambda x, y=1: x)

        with pytest.raises(LiftError, match="positional"):
            _lift(f)

    def test_fstring_rejected(self):
        def f(x):
            return f"{x}"

        with pytest.raises(LiftError, match="JoinedStr"):
            _lift(f)


class TestComprehensionLifting:
    def test_generator_expression(self):
        def f(xs: DataBag):
            return (x + 1 for x in xs if x > 0)

        lifted = _lift(f)
        comp = lifted.program.body[0].value
        assert isinstance(comp, Comprehension)
        assert len(comp.generators()) == 1
        assert len(comp.guards()) == 1

    def test_multi_generator_comprehension(self):
        def f(xs: DataBag, ys: DataBag):
            return ((x, y) for x in xs for y in ys if x == y)

        lifted = _lift(f)
        comp = lifted.program.body[0].value
        assert len(comp.generators()) == 2

    def test_list_comprehension_lifts_like_genexp(self):
        def f(xs: DataBag):
            return [x for x in xs]

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, Comprehension)

    def test_tuple_target_rejected(self):
        def f(xs: DataBag):
            return (a for a, b in xs)

        with pytest.raises(LiftError, match="simple names"):
            _lift(f)


class TestBagMethodDispatch:
    def test_map_on_annotated_param(self):
        def f(xs: DataBag):
            return xs.map(lambda x: x * 2)

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, MapCall)

    def test_bags_argument_marks_parameters(self):
        def f(xs):
            return xs.map(lambda x: x)

        lifted = _lift(f, bags=("xs",))
        assert isinstance(lifted.program.body[0].value, MapCall)

    def test_fold_aliases_lift(self):
        def f(xs: DataBag):
            return xs.sum() + xs.count() + xs.min_by(lambda x: x)

        lifted = _lift(f)
        ret = lifted.program.body[0].value
        folds = [
            n
            for n in _walk_expr(ret)
            if isinstance(n, FoldCall)
        ]
        assert {f_.spec.alias for f_ in folds} == {
            "sum",
            "count",
            "min_by",
        }

    def test_size_maps_to_count(self):
        def f(xs: DataBag):
            return xs.size()

        lifted = _lift(f)
        assert lifted.program.body[0].value.spec.alias == "count"

    def test_eta_expansion_of_named_functions(self):
        def g(x):
            return x + 1

        def f(xs: DataBag):
            return xs.map(g)

        lifted = _lift(f)
        call = lifted.program.body[0].value
        assert isinstance(call, MapCall)
        assert isinstance(call.fn, Lambda)

    def test_common_method_on_scalar_stays_opaque(self):
        def f(s):
            return s.count()

        # `s` is not bag-typed, so str.count()-style calls stay opaque.
        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, Call)

    def test_group_values_treated_as_bag(self):
        def f(xs: DataBag):
            return (g.values.count() for g in xs.group_by(lambda x: x))

        lifted = _lift(f)
        comp = lifted.program.body[0].value
        assert isinstance(comp.head, FoldCall)

    def test_fetch(self):
        def f(xs: DataBag):
            return xs.fetch()

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, FetchCall)

    def test_group_by(self):
        def f(xs: DataBag):
            return xs.group_by(lambda x: x % 2)

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, GroupByCall)


class TestIntrinsics:
    def test_read_write(self):
        def f(path, fmt):
            data = read(path, fmt)  # noqa: F821 - intrinsic
            write(path, fmt, data)  # noqa: F821 - intrinsic
            return None

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, ReadCall)
        assert isinstance(lifted.program.body[1].value, WriteCall)

    def test_databag_literal(self):
        def f(seq):
            return DataBag(seq)

        lifted = _lift(f)
        assert isinstance(lifted.program.body[0].value, BagLiteral)

    def test_stateful_lifecycle(self):
        def f(xs: DataBag):
            state = stateful(xs)  # noqa: F821 - intrinsic
            state.update(lambda s: None)
            state.update_with_messages(xs, lambda s, m: None)
            return state.bag()

        lifted = _lift(f)
        body = lifted.program.body
        assert isinstance(body[0].value, StatefulCreate)
        assert body[0].stateful
        assert isinstance(body[1].value, StatefulUpdate)
        assert isinstance(body[2].value, StatefulUpdateWithMessages)
        assert isinstance(body[3].value, StatefulBagOf)

    def test_wrong_intrinsic_arity(self):
        def f(path):
            return read(path)  # noqa: F821 - intrinsic

        with pytest.raises(LiftError, match="read"):
            _lift(f)


class TestCapturedEnvironment:
    def test_globals_captured(self):
        def f(x):
            return x + GLOBAL_CONSTANT

        lifted = _lift(f)
        assert lifted.captured["GLOBAL_CONSTANT"] == 17

    def test_closure_captured(self):
        offset = 5

        def f(x):
            return x + offset

        lifted = _lift(f)
        assert lifted.captured["offset"] == 5

    def test_builtins_captured(self):
        def f(xs):
            return len(xs)

        lifted = _lift(f)
        assert lifted.captured["len"] is len

    def test_unresolved_name_rejected(self):
        def f(x):
            return x + definitely_not_defined  # noqa: F821

        with pytest.raises(LiftError, match="definitely_not_defined"):
            _lift(f)

    def test_locals_not_captured(self):
        def f(x):
            y = 1
            return x + y

        lifted = _lift(f)
        assert "y" not in lifted.captured


class TestBagTypeTracking:
    def test_assignment_propagates_bagness(self):
        def f(xs: DataBag):
            ys = xs.map(lambda x: x)
            zs = ys.with_filter(lambda x: True)
            return zs

        lifted = _lift(f)
        assert lifted.program.body[0].bag_typed
        assert lifted.program.body[1].bag_typed
        assert isinstance(lifted.program.body[1].value, FilterCall)

    def test_scalar_assignment_clears_bagness(self):
        def f(xs: DataBag):
            y = xs.map(lambda x: x)
            y = 5
            return y

        lifted = _lift(f)
        assert lifted.program.body[0].bag_typed
        assert not lifted.program.body[1].bag_typed


def _walk_expr(expr):
    from repro.comprehension.exprs import walk

    return walk(expr)

"""Tests for DataBag I/O formats."""

from dataclasses import dataclass

import pytest

from repro.core.databag import DataBag
from repro.core.io import (
    CsvFormat,
    JsonLinesFormat,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.errors import EmmaError


@dataclass(frozen=True)
class Row:
    id: int
    score: float
    name: str
    active: bool


@dataclass(frozen=True)
class Nested:
    id: int
    values: list


class TestCsvFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        fmt = CsvFormat(Row)
        bag = DataBag(
            [Row(1, 0.5, "a", True), Row(2, -1.25, "b", False)]
        )
        write_csv(path, fmt, bag)
        assert read_csv(path, fmt) == bag

    def test_header_written(self, tmp_path):
        path = tmp_path / "rows.csv"
        fmt = CsvFormat(Row)
        write_csv(path, fmt, DataBag([Row(1, 1.0, "x", True)]))
        header = path.read_text().splitlines()[0]
        assert header == "id,score,name,active"

    def test_bool_parsing_variants(self):
        fmt = CsvFormat(Row)
        row = fmt.parse_row(
            {"id": "1", "score": "2.0", "name": "n", "active": "1"}
        )
        assert row.active is True
        row = fmt.parse_row(
            {"id": "1", "score": "2.0", "name": "n", "active": "no"}
        )
        assert row.active is False

    def test_unsupported_field_type_rejected(self):
        with pytest.raises(EmmaError, match="unsupported"):
            CsvFormat(Nested)

    def test_fieldless_type_rejected(self):
        class Empty:
            pass

        with pytest.raises(EmmaError, match="no fields"):
            CsvFormat(Empty)

    def test_field_names(self):
        assert CsvFormat(Row).field_names == [
            "id",
            "score",
            "name",
            "active",
        ]


class TestJsonLinesFormat:
    def test_round_trip_with_nested_fields(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        fmt = JsonLinesFormat(Nested)
        bag = DataBag([Nested(1, [1, 2]), Nested(2, [])])
        write_jsonl(path, fmt, bag)
        assert read_jsonl(path, fmt) == bag

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"id": 1, "values": []}\n\n')
        assert len(read_jsonl(path, JsonLinesFormat(Nested))) == 1

    def test_one_object_per_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl(
            path,
            JsonLinesFormat(Nested),
            DataBag([Nested(1, []), Nested(2, [3])]),
        )
        assert len(path.read_text().strip().splitlines()) == 2

"""Tests for the DataBag abstraction (paper Listing 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.databag import DataBag
from repro.core.grp import Grp

ints = st.lists(st.integers(min_value=-50, max_value=50), max_size=30)


class TestConstruction:
    def test_from_iterable(self):
        assert sorted(DataBag([3, 1, 2])) == [1, 2, 3]

    def test_empty(self):
        bag = DataBag.empty()
        assert len(bag) == 0
        assert bag.fetch() == []

    def test_of(self):
        assert sorted(DataBag.of(1, 2, 2)) == [1, 2, 2]

    def test_single(self):
        assert DataBag.single(7).fetch() == [7]

    def test_fetch_returns_a_copy(self):
        bag = DataBag([1, 2])
        fetched = bag.fetch()
        fetched.append(99)
        assert len(bag) == 2


class TestBagSemantics:
    def test_equality_ignores_order(self):
        assert DataBag([1, 2, 3]) == DataBag([3, 2, 1])

    def test_equality_respects_multiplicity(self):
        assert DataBag([1, 1, 2]) != DataBag([1, 2, 2])
        assert DataBag([1]) != DataBag([1, 1])

    def test_equality_against_non_bag(self):
        assert DataBag([1]) != [1]

    def test_hash_consistent_with_equality(self):
        assert hash(DataBag([1, 2])) == hash(DataBag([2, 1]))

    def test_contains(self):
        assert 2 in DataBag([1, 2])
        assert 5 not in DataBag([1, 2])

    def test_repr_previews(self):
        assert "DataBag" in repr(DataBag(range(20)))


class TestMonadOperators:
    def test_map(self):
        assert DataBag([1, 2]).map(lambda x: x * 10) == DataBag([10, 20])

    def test_map_empty(self):
        assert DataBag.empty().map(lambda x: x) == DataBag.empty()

    def test_flat_map_with_bags(self):
        result = DataBag([1, 2]).flat_map(
            lambda x: DataBag([x, -x])
        )
        assert result == DataBag([1, -1, 2, -2])

    def test_flat_map_with_plain_iterables(self):
        result = DataBag([2, 3]).flat_map(lambda x: range(x))
        assert result == DataBag([0, 1, 0, 1, 2])

    def test_with_filter(self):
        assert DataBag([1, 2, 3, 4]).with_filter(
            lambda x: x % 2 == 0
        ) == DataBag([2, 4])

    def test_filter_alias(self):
        bag = DataBag([1, 2])
        assert bag.filter(lambda x: x > 1) == bag.with_filter(
            lambda x: x > 1
        )


class TestGrouping:
    def test_group_by_partitions_elements(self):
        groups = DataBag([1, 2, 3, 4, 5]).group_by(lambda x: x % 2)
        by_key = {g.key: g.values for g in groups}
        assert by_key[0] == DataBag([2, 4])
        assert by_key[1] == DataBag([1, 3, 5])

    def test_group_values_are_databags(self):
        (group,) = DataBag([1, 1]).group_by(lambda x: x).fetch()
        assert isinstance(group, Grp)
        assert isinstance(group.values, DataBag)

    def test_one_group_per_distinct_key(self):
        groups = DataBag([1, 2, 3]).group_by(lambda x: 0)
        assert len(groups) == 1

    def test_group_by_empty(self):
        assert DataBag.empty().group_by(lambda x: x) == DataBag.empty()


class TestUnionDifferenceDistinct:
    def test_plus_adds_multiplicities(self):
        assert DataBag([1, 2]).plus(DataBag([2, 3])) == DataBag(
            [1, 2, 2, 3]
        )

    def test_minus_subtracts_multiplicities(self):
        assert DataBag([1, 1, 2, 3]).minus(DataBag([1, 3, 4])) == DataBag(
            [1, 2]
        )

    def test_minus_floors_at_zero(self):
        assert DataBag([1]).minus(DataBag([1, 1, 1])) == DataBag.empty()

    def test_distinct(self):
        assert DataBag([1, 1, 2, 2, 3]).distinct() == DataBag([1, 2, 3])

    def test_distinct_empty(self):
        assert DataBag.empty().distinct() == DataBag.empty()


class TestFolds:
    def test_generic_fold(self):
        assert DataBag([1, 2, 3]).fold(0, lambda x: x, lambda a, b: a + b) == 6

    def test_fold_with_zero_factory(self):
        result = DataBag([1, 2]).fold(
            list, lambda x: [x], lambda a, b: a + b
        )
        assert sorted(result) == [1, 2]

    def test_sum_product(self):
        assert DataBag([1, 2, 3]).sum() == 6
        assert DataBag([2, 3, 4]).product() == 24

    def test_sum_empty(self):
        assert DataBag.empty().sum() == 0

    def test_count_and_size(self):
        bag = DataBag([1, 1, 1])
        assert bag.count() == 3
        assert bag.size() == 3

    def test_is_empty_non_empty(self):
        assert DataBag.empty().is_empty()
        assert not DataBag([1]).is_empty()
        assert DataBag([1]).non_empty()

    def test_exists_forall(self):
        bag = DataBag([1, 2, 3])
        assert bag.exists(lambda x: x == 2)
        assert not bag.exists(lambda x: x == 9)
        assert bag.forall(lambda x: x > 0)
        assert not bag.forall(lambda x: x > 1)

    def test_min_max(self):
        bag = DataBag([5, 2, 8])
        assert bag.min() == 2
        assert bag.max() == 8
        assert DataBag.empty().min() is None

    def test_min_by_max_by(self):
        bag = DataBag([(1, "b"), (2, "a")])
        assert bag.min_by(lambda t: t[1]) == (2, "a")
        assert bag.max_by(lambda t: t[0]) == (2, "a")
        assert DataBag.empty().min_by(lambda t: t) is None

    def test_sample(self):
        assert len(DataBag([1, 2, 3]).sample(2)) == 2
        assert DataBag([1]).sample(5) == [1]
        with pytest.raises(ValueError):
            DataBag([1]).sample(-1)


class TestMonadLaws:
    @given(ints)
    def test_map_identity(self, xs):
        bag = DataBag(xs)
        assert bag.map(lambda x: x) == bag

    @given(ints)
    def test_map_composition(self, xs):
        f = lambda x: x + 1  # noqa: E731
        g = lambda x: x * 2  # noqa: E731
        bag = DataBag(xs)
        assert bag.map(f).map(g) == bag.map(lambda x: g(f(x)))

    @given(ints)
    def test_flat_map_left_identity(self, xs):
        f = lambda x: DataBag([x, x])  # noqa: E731
        for x in xs[:5]:
            assert DataBag.single(x).flat_map(f) == f(x)

    @given(ints)
    def test_flat_map_right_identity(self, xs):
        bag = DataBag(xs)
        assert bag.flat_map(DataBag.single) == bag

    @given(ints)
    def test_flat_map_associativity(self, xs):
        f = lambda x: DataBag([x, -x])  # noqa: E731
        g = lambda x: DataBag([x * 2])  # noqa: E731
        bag = DataBag(xs)
        assert bag.flat_map(f).flat_map(g) == bag.flat_map(
            lambda x: f(x).flat_map(g)
        )

    @given(ints)
    def test_filter_fusion(self, xs):
        p = lambda x: x % 2 == 0  # noqa: E731
        q = lambda x: x > 0  # noqa: E731
        bag = DataBag(xs)
        assert bag.with_filter(p).with_filter(q) == bag.with_filter(
            lambda x: p(x) and q(x)
        )


class TestAlgebraicLaws:
    @given(ints, ints)
    def test_plus_commutative(self, xs, ys):
        assert DataBag(xs).plus(DataBag(ys)) == DataBag(ys).plus(
            DataBag(xs)
        )

    @given(ints, ints, ints)
    def test_plus_associative(self, xs, ys, zs):
        a, b, c = DataBag(xs), DataBag(ys), DataBag(zs)
        assert a.plus(b).plus(c) == a.plus(b.plus(c))

    @given(ints)
    def test_plus_unit(self, xs):
        bag = DataBag(xs)
        assert bag.plus(DataBag.empty()) == bag
        assert DataBag.empty().plus(bag) == bag

    @given(ints)
    def test_group_by_partitions_completely(self, xs):
        groups = DataBag(xs).group_by(lambda x: x % 3)
        rebuilt = []
        for g in groups:
            rebuilt.extend(g.values.fetch())
        assert DataBag(rebuilt) == DataBag(xs)

    @given(ints)
    def test_fold_group_fusion_semantics(self, xs):
        # groupBy + per-group fold == dict-based aggregation.
        groups = DataBag(xs).group_by(lambda x: x % 3)
        via_groups = {g.key: g.values.sum() for g in groups}
        expected: dict = {}
        for x in xs:
            expected[x % 3] = expected.get(x % 3, 0) + x
        assert via_groups == expected

    @given(ints, ints)
    def test_minus_respects_multiset_difference(self, xs, ys):
        from collections import Counter

        result = DataBag(xs).minus(DataBag(ys))
        expected = Counter(xs) - Counter(ys)
        assert result == DataBag(expected.elements())

"""Tests for StatefulBag (paper Section 3.1, "Stateful Bags")."""

from dataclasses import dataclass, replace

import pytest

from repro.core.databag import DataBag
from repro.core.stateful import StatefulBag
from repro.errors import EmmaError


@dataclass(frozen=True)
class State:
    id: int
    value: int


@dataclass(frozen=True)
class Keyed:
    key: str
    value: int


@dataclass(frozen=True)
class Message:
    id: int
    delta: int


def make_state(*pairs) -> StatefulBag:
    return StatefulBag(DataBag(State(i, v) for i, v in pairs))


class TestConstruction:
    def test_from_databag(self):
        state = make_state((1, 10), (2, 20))
        assert len(state) == 2
        assert state.get(1) == State(1, 10)

    def test_key_attribute_preferred_over_id(self):
        state = StatefulBag(DataBag([Keyed("a", 1)]))
        assert state.get("a") == Keyed("a", 1)

    def test_explicit_key_function(self):
        state = StatefulBag(
            DataBag([(5, "x")]), key=lambda t: t[0]
        )
        assert state.get(5) == (5, "x")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(EmmaError, match="duplicate key"):
            make_state((1, 10), (1, 20))

    def test_elements_without_key_rejected(self):
        with pytest.raises(EmmaError, match="key"):
            StatefulBag(DataBag([(1, 2)]))

    def test_contains(self):
        state = make_state((1, 10))
        assert 1 in state
        assert 2 not in state


class TestSnapshot:
    def test_bag_returns_current_state(self):
        state = make_state((1, 10), (2, 20))
        assert state.bag() == DataBag([State(1, 10), State(2, 20)])

    def test_bag_is_a_snapshot(self):
        state = make_state((1, 10))
        snapshot = state.bag()
        state.update(lambda s: replace(s, value=99))
        assert snapshot == DataBag([State(1, 10)])


class TestPointwiseUpdate:
    def test_update_all(self):
        state = make_state((1, 10), (2, 20))
        delta = state.update(lambda s: replace(s, value=s.value + 1))
        assert delta == DataBag([State(1, 11), State(2, 21)])
        assert state.get(1) == State(1, 11)

    def test_update_none_means_no_change(self):
        state = make_state((1, 10), (2, 20))
        delta = state.update(
            lambda s: replace(s, value=0) if s.id == 1 else None
        )
        assert delta == DataBag([State(1, 0)])
        assert state.get(2) == State(2, 20)

    def test_update_must_preserve_key(self):
        state = make_state((1, 10))
        with pytest.raises(EmmaError, match="preserve"):
            state.update(lambda s: State(99, s.value))

    def test_update_empty_delta(self):
        state = make_state((1, 10))
        assert state.update(lambda s: None) == DataBag.empty()


class TestMessageUpdate:
    def test_messages_route_by_key(self):
        state = make_state((1, 10), (2, 20))
        delta = state.update_with_messages(
            DataBag([Message(1, 5)]),
            lambda s, m: replace(s, value=s.value + m.delta),
        )
        assert delta == DataBag([State(1, 15)])
        assert state.get(2) == State(2, 20)

    def test_messages_to_unknown_keys_dropped(self):
        state = make_state((1, 10))
        delta = state.update_with_messages(
            DataBag([Message(42, 1)]),
            lambda s, m: replace(s, value=0),
        )
        assert delta == DataBag.empty()

    def test_multiple_messages_apply_in_sequence(self):
        state = make_state((1, 0))
        delta = state.update_with_messages(
            DataBag([Message(1, 3), Message(1, 4)]),
            lambda s, m: replace(s, value=s.value + m.delta),
        )
        # The element appears once in the delta, with its final value.
        assert delta == DataBag([State(1, 7)])

    def test_update_fn_may_decline(self):
        state = make_state((1, 10))
        delta = state.update_with_messages(
            DataBag([Message(1, -5)]),
            lambda s, m: (
                replace(s, value=s.value + m.delta)
                if m.delta > 0
                else None
            ),
        )
        assert delta == DataBag.empty()
        assert state.get(1) == State(1, 10)

    def test_custom_message_key(self):
        state = make_state((1, 10))
        delta = state.update_with_messages(
            DataBag([("ignored", 1, 5)]),
            lambda s, m: replace(s, value=m[2]),
            message_key=lambda m: m[1],
        )
        assert delta == DataBag([State(1, 5)])

    def test_message_update_must_preserve_key(self):
        state = make_state((1, 10))
        with pytest.raises(EmmaError, match="preserve"):
            state.update_with_messages(
                DataBag([Message(1, 0)]),
                lambda s, m: State(2, 0),
            )


class TestSemiNaiveIteration:
    def test_connected_components_style_loop(self):
        # max-label propagation on a path graph 0-1-2.
        @dataclass(frozen=True)
        class V:
            id: int
            neighbors: tuple
            component: int

        vertices = [
            V(0, (1,), 0),
            V(1, (0, 2), 1),
            V(2, (1,), 2),
        ]
        state = StatefulBag(DataBag(vertices))
        delta = state.bag()
        rounds = 0
        while delta.non_empty():
            messages = DataBag(
                (n, s.component)
                for s in delta
                for n in s.neighbors
            )
            updates = DataBag(
                (g.key, g.values.map(lambda m: m[1]).max())
                for g in messages.group_by(lambda m: m[0])
            )
            delta = state.update_with_messages(
                updates,
                lambda s, u: (
                    replace(s, component=u[1])
                    if u[1] > s.component
                    else None
                ),
                message_key=lambda u: u[0],
            )
            rounds += 1
        labels = {s.id: s.component for s in state.bag()}
        assert labels == {0: 2, 1: 2, 2: 2}
        assert rounds <= 4

"""Tests for the comprehension pretty-printer."""

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    DistinctCall,
    FetchCall,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    IfElse,
    Index,
    Lambda,
    ListExpr,
    MapCall,
    MinusCall,
    PlusCall,
    ReadCall,
    Ref,
    TupleExpr,
    UnaryOp,
    WriteCall,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    Flatten,
    FoldKind,
    GenMode,
    Generator,
    Guard,
)
from repro.comprehension.pretty import pretty


class TestScalarRendering:
    def test_atoms(self):
        assert pretty(Const(5)) == "5"
        assert pretty(Ref("x")) == "x"

    def test_named_constants_use_their_name(self):
        def helper():
            pass

        assert pretty(Const(helper)) == "helper"

    def test_access(self):
        assert pretty(Attr(Ref("r"), "ip")) == "r.ip"
        assert pretty(Index(Ref("t"), Const(0))) == "t[0]"

    def test_operators(self):
        assert pretty(BinOp("+", Ref("a"), Const(1))) == "(a + 1)"
        assert pretty(UnaryOp("not", Ref("p"))) == "(not p)"
        assert pretty(UnaryOp("-", Ref("x"))) == "(-x)"
        assert pretty(Compare("==", Ref("a"), Ref("b"))) == "(a == b)"
        assert (
            pretty(BoolOp("and", (Ref("p"), Ref("q")))) == "(p and q)"
        )

    def test_composites(self):
        assert pretty(TupleExpr((Ref("a"), Ref("b")))) == "(a, b)"
        assert pretty(ListExpr((Const(1),))) == "[1]"
        assert (
            pretty(IfElse(Ref("c"), Const(1), Const(2)))
            == "(1 if c else 2)"
        )

    def test_call_with_kwargs(self):
        expr = Call(Ref("f"), (Ref("x"),), (("k", Const(1)),))
        assert pretty(expr) == "f(x, k=1)"

    def test_lambda(self):
        assert pretty(Lambda(("x",), Ref("x"))) == "(\\x -> x)"


class TestBagRendering:
    def test_operator_chain(self):
        expr = FilterCall(
            MapCall(Ref("xs"), Lambda(("x",), Ref("x"))),
            Lambda(("y",), Const(True)),
        )
        text = pretty(expr)
        assert ".map" in text and ".with_filter" in text

    def test_flat_map_group_by(self):
        assert ".flat_map" in pretty(
            FlatMapCall(Ref("xs"), Lambda(("x",), Ref("x")))
        )
        assert ".group_by" in pretty(
            GroupByCall(Ref("xs"), Lambda(("x",), Ref("x")))
        )

    def test_folds(self):
        assert pretty(FoldCall(Ref("xs"), AlgebraSpec("sum"))) == (
            "xs.sum()"
        )

    def test_set_operations(self):
        assert pretty(PlusCall(Ref("a"), Ref("b"))) == "(a plus b)"
        assert pretty(MinusCall(Ref("a"), Ref("b"))) == "(a minus b)"
        assert pretty(DistinctCall(Ref("a"))) == "a.distinct()"

    def test_io_and_conversion(self):
        assert pretty(ReadCall(Const("p"), Const(None))) == "read('p')"
        assert "write" in pretty(
            WriteCall(Const("p"), Const(None), Ref("xs"))
        )
        assert pretty(BagLiteral(Ref("seq"))) == "DataBag(seq)"
        assert pretty(FetchCall(Ref("xs"))) == "xs.fetch()"


class TestComprehensionRendering:
    def test_bag_comprehension(self):
        comp = Comprehension(
            head=Ref("x"),
            qualifiers=(
                Generator("x", Ref("xs")),
                Guard(Compare(">", Ref("x"), Const(0))),
            ),
            kind=BAG,
        )
        assert pretty(comp) == "[[ x | x <- xs, (x > 0) ]]^Bag"

    def test_fold_comprehension(self):
        comp = Comprehension(
            head=Ref("x"),
            qualifiers=(Generator("x", Ref("xs")),),
            kind=FoldKind(AlgebraSpec("sum")),
        )
        assert pretty(comp).endswith("]]^fold(sum)")

    def test_exists_arrows(self):
        comp = Comprehension(
            head=Ref("e"),
            qualifiers=(
                Generator("e", Ref("es")),
                Generator("b", Ref("bs"), GenMode.EXISTS),
                Generator("c", Ref("cs"), GenMode.NOT_EXISTS),
            ),
            kind=BAG,
        )
        text = pretty(comp)
        assert "b <~ bs" in text
        assert "c </~ cs" in text

    def test_flatten(self):
        comp = Comprehension(
            head=Ref("x"), qualifiers=(Generator("x", Ref("xs")),)
        )
        assert pretty(Flatten(comp)).startswith("flatten [[")

"""Tests for the native scalar-expression compiler.

``compile_scalar`` must agree with the tree-walking ``evaluate`` on the
whole compilable subset, and must *refuse* (return ``None``) on anything
outside it so callers keep the interpreting closure.
"""

import pytest

from repro.comprehension.exprs import (
    Attr,
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Env,
    IfElse,
    Index,
    Lambda,
    ListExpr,
    MapCall,
    NativeCodegen,
    NotCompilable,
    Ref,
    TupleExpr,
    UnaryOp,
    compile_scalar,
    compile_scalar_source,
)
from repro.lowering.combinators import ScalarFn


def both(params, body, env, *args):
    """Run the native compile and the interpreter; assert agreement."""
    native = compile_scalar(params, body, env)
    assert native is not None, "expected the expression to compile"
    interp = Lambda(params, body).evaluate(Env.of(env))
    assert native(*args) == interp(*args)
    return native(*args)


class TestCompiledSemantics:
    def test_arithmetic(self):
        body = BinOp("*", BinOp("+", Ref("x"), Const(3)), Ref("x"))
        assert both(("x",), body, {}, 4) == 28

    def test_comparison_and_boolop(self):
        body = BoolOp(
            "and",
            (
                Compare(">", Ref("x"), Const(0)),
                Compare("<", Ref("x"), Const(10)),
            ),
        )
        assert both(("x",), body, {}, 5) is True
        assert both(("x",), body, {}, 50) is False

    def test_unary_ifelse(self):
        body = IfElse(
            then=UnaryOp("-", Ref("x")),
            cond=Compare(">", Ref("x"), Const(0)),
            orelse=Ref("x"),
        )
        assert both(("x",), body, {}, 7) == -7
        assert both(("x",), body, {}, -7) == -7

    def test_attr_index_tuple_list(self):
        body = TupleExpr(
            (
                Attr(Ref("x"), "real"),
                Index(ListExpr((Ref("x"), Const(9))), Const(1)),
            )
        )
        assert both(("x",), body, {}, 3) == (3, 9)

    def test_one_element_tuple(self):
        assert both(("x",), TupleExpr((Ref("x"),)), {}, 1) == (1,)

    def test_call_with_kwargs(self):
        body = Call(
            Ref("f"), (Ref("x"),), (("base", Const(2)),)
        )
        env = {"f": lambda v, base: v**base}
        assert both(("x",), body, env, 5) == 25

    def test_nested_lambda(self):
        body = Call(Lambda(("y",), BinOp("+", Ref("x"), Ref("y"))), (Const(1),))
        assert both(("x",), body, {}, 10) == 11

    def test_free_name_closed_over_eagerly(self):
        body = BinOp("+", Ref("x"), Ref("k"))
        fn = compile_scalar(("x",), body, {"k": 100})
        assert fn(1) == 101

    def test_shadowed_param_beats_env(self):
        body = Ref("x")
        fn = compile_scalar(("x",), body, {"x": 999})
        assert fn(5) == 5

    def test_nonliteral_constant_interned(self):
        marker = object()
        fn = compile_scalar(("x",), Const(marker), {})
        assert fn(0) is marker

    def test_nonfinite_float_constant(self):
        inf = float("inf")
        fn = compile_scalar(("x",), Const(inf), {})
        assert fn(0) == inf


class TestRefusals:
    def test_bag_expression_refused(self):
        body = MapCall(BagLiteral(ListExpr((Const(1),))), Lambda(("y",), Ref("y")))
        assert compile_scalar(("x",), body, {}) is None

    def test_unbound_free_name_refused(self):
        assert (
            compile_scalar(("x",), BinOp("+", Ref("x"), Ref("k")), {})
            is None
        )

    def test_keyword_param_refused(self):
        assert compile_scalar(("class",), Ref("class"), {}) is None

    def test_reserved_const_prefix_param_refused(self):
        assert compile_scalar(("_cv0",), Ref("_cv0"), {}) is None


class TestNativeCodegen:
    def test_intern_const_is_stable_per_identity(self):
        cg = NativeCodegen()
        marker = object()
        assert cg.intern_const(marker) == cg.intern_const(marker)
        assert cg.intern_const(object()) != cg.intern_const(marker)

    def test_bind_free_rejects_conflicting_values(self):
        cg = NativeCodegen()
        cg.bind_free("k", 1)
        cg.bind_free("k", 1)  # same object: fine
        with pytest.raises(NotCompilable):
            cg.bind_free("k", 2.5)

    def test_bind_free_rejects_reserved_prefix(self):
        cg = NativeCodegen()
        with pytest.raises(NotCompilable):
            cg.bind_free("_cv1", 1)

    def test_shared_namespace_across_expressions(self):
        cg = NativeCodegen()
        env = Env({"a": 5, "b": 7})
        src1 = cg.emit(Ref("a"), {}, env.lookup)
        src2 = cg.emit(BinOp("+", Ref("a"), Ref("b")), {}, env.lookup)
        fn = compile_scalar_source(("x",), f"{src1} + {src2}", cg.globals_)
        assert fn(0) == 17


class TestScalarFnIntegration:
    def test_compile_native_reports_nativeness(self):
        fn = ScalarFn(("x",), BinOp("+", Ref("x"), Const(1)))
        compiled, native = fn.compile_native({})
        assert native
        assert compiled(41) == 42

    def test_compile_native_fallback(self):
        body = MapCall(
            BagLiteral(ListExpr((Const(1), Const(2)))), Lambda(("y",), Ref("y"))
        )
        fn = ScalarFn(("x",), body)
        compiled, native = fn.compile_native({})
        assert not native
        assert list(compiled(0)) == [1, 2]

"""Tests for comprehension normalization (paper Section 4.1)."""

from dataclasses import dataclass

from hypothesis import given
from hypothesis import strategies as st

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    BoolOp,
    Compare,
    Const,
    FilterCall,
    FlatMapCall,
    FoldCall,
    Lambda,
    MapCall,
    Ref,
    evaluate,
)
from repro.comprehension.ir import (
    Comprehension,
    Flatten,
    GenMode,
)
from repro.comprehension.normalize import NormalizeStats, normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag


@dataclass(frozen=True)
class E:
    ip: int


def _normalized(expr, unnest_exists=True):
    stats = NormalizeStats()
    out = normalize(resugar(expr), unnest_exists=unnest_exists, stats=stats)
    return out, stats


class TestGeneratorUnnesting:
    def test_map_map_fuses_into_one_comprehension(self):
        chain = MapCall(
            MapCall(Ref("xs"), Lambda(("x",), BinOp("+", Ref("x"), Const(1)))),
            Lambda(("y",), BinOp("*", Ref("y"), Const(2))),
        )
        out, stats = _normalized(chain)
        assert isinstance(out, Comprehension)
        assert len(out.generators()) == 1
        assert stats.generator_unnests >= 1
        assert evaluate(out, {"xs": DataBag([1, 2])}) == DataBag([4, 6])

    def test_filter_map_chain_fuses(self):
        chain = FoldCall(
            FilterCall(
                MapCall(
                    Ref("xs"),
                    Lambda(("x",), BinOp("*", Ref("x"), Const(3))),
                ),
                Lambda(("y",), Compare(">", Ref("y"), Const(3))),
            ),
            AlgebraSpec("sum"),
        )
        out, _ = _normalized(chain)
        assert isinstance(out, Comprehension)
        assert len(out.generators()) == 1
        assert evaluate(out, {"xs": DataBag([1, 2, 3])}) == 15

    def test_fusion_substitutes_into_guards(self):
        # filter(p) over map(f): the guard must mention f(x).
        chain = FilterCall(
            MapCall(Ref("xs"), Lambda(("x",), BinOp("+", Ref("x"), Const(1)))),
            Lambda(("y",), Compare("==", Ref("y"), Const(3))),
        )
        out, _ = _normalized(chain)
        assert evaluate(out, {"xs": DataBag([1, 2, 3])}) == DataBag([3])


class TestHeadUnnesting:
    def test_flat_map_of_map_flattens(self):
        # xs.flat_map(x => ys.map(y => (x, y)))  — a cross product.
        chain = FlatMapCall(
            Ref("xs"),
            Lambda(
                ("x",),
                MapCall(
                    Ref("ys"),
                    Lambda(("y",), BinOp("+", Ref("x"), Ref("y"))),
                ),
            ),
        )
        out, stats = _normalized(chain)
        assert isinstance(out, Comprehension)
        assert not isinstance(out, Flatten)
        assert len(out.generators()) == 2
        assert stats.head_unnests >= 1
        env = {"xs": DataBag([1, 2]), "ys": DataBag([10])}
        assert evaluate(out, env) == DataBag([11, 12])

    def test_flat_map_of_bare_bag_reference(self):
        chain = FlatMapCall(Ref("xs"), Lambda(("x",), Ref("ys")))
        out, _ = _normalized(chain)
        assert isinstance(out, Comprehension)
        env = {"xs": DataBag([1, 2]), "ys": DataBag([7])}
        assert evaluate(out, env) == DataBag([7, 7])

    def test_join_pattern_from_nested_chains(self):
        # The paper's desugared `distances` expression shape.
        chain = FlatMapCall(
            Ref("xs"),
            Lambda(
                ("x",),
                MapCall(
                    FilterCall(
                        Ref("ys"),
                        Lambda(
                            ("y",), Compare("==", Ref("x"), Ref("y"))
                        ),
                    ),
                    Lambda(("y",), Ref("y")),
                ),
            ),
        )
        out, _ = _normalized(chain)
        assert isinstance(out, Comprehension)
        assert len(out.generators()) == 2
        assert len(out.guards()) == 1


class TestExistsUnnesting:
    def _exists_filter(self, negate=False):
        pred = Lambda(
            ("b",),
            Compare("==", Attr(Ref("b"), "ip"), Attr(Ref("e"), "ip")),
        )
        body = FoldCall(Ref("bl"), AlgebraSpec("exists", (pred,)))
        if negate:
            from repro.comprehension.exprs import UnaryOp

            body = UnaryOp("not", body)
        return FilterCall(Ref("emails"), Lambda(("e",), body))

    def test_exists_becomes_exists_generator(self):
        out, stats = _normalized(self._exists_filter())
        assert stats.exists_unnests == 1
        modes = [g.mode for g in out.generators()]
        assert GenMode.EXISTS in modes

    def test_not_exists_becomes_anti_generator(self):
        out, stats = _normalized(self._exists_filter(negate=True))
        assert stats.exists_unnests == 1
        modes = [g.mode for g in out.generators()]
        assert GenMode.NOT_EXISTS in modes

    def test_toggle_keeps_guard(self):
        out, stats = _normalized(
            self._exists_filter(), unnest_exists=False
        )
        assert stats.exists_unnests == 0
        assert len(out.generators()) == 1  # only the email generator

    def test_semantics_preserved_both_ways(self):
        env = {
            "emails": DataBag([E(1), E(2), E(2), E(3)]),
            "bl": DataBag([E(2), E(9)]),
        }
        unnested, _ = _normalized(self._exists_filter())
        guarded, _ = _normalized(
            self._exists_filter(), unnest_exists=False
        )
        assert (
            evaluate(unnested, env)
            == evaluate(guarded, env)
            == DataBag([E(2), E(2)])
        )

    def test_conjunctive_predicate_splits(self):
        # exists(b -> b.ip == e.ip and b.ip > 0) — the inner-only
        # conjunct becomes a pushable guard.
        pred = Lambda(
            ("b",),
            BoolOp(
                "and",
                (
                    Compare(
                        "==",
                        Attr(Ref("b"), "ip"),
                        Attr(Ref("e"), "ip"),
                    ),
                    Compare(">", Attr(Ref("b"), "ip"), Const(0)),
                ),
            ),
        )
        expr = FilterCall(
            Ref("emails"),
            Lambda(
                ("e",),
                FoldCall(Ref("bl"), AlgebraSpec("exists", (pred,))),
            ),
        )
        out, stats = _normalized(expr)
        assert stats.exists_unnests == 1
        assert len(out.guards()) == 2
        env = {
            "emails": DataBag([E(0), E(2)]),
            "bl": DataBag([E(0), E(2)]),
        }
        assert evaluate(out, env) == DataBag([E(2)])

    def test_non_equi_exists_not_unnested(self):
        # exists with only an inequality cannot become a semi-join.
        pred = Lambda(
            ("b",),
            Compare("<", Attr(Ref("b"), "ip"), Attr(Ref("e"), "ip")),
        )
        expr = FilterCall(
            Ref("emails"),
            Lambda(
                ("e",),
                FoldCall(Ref("bl"), AlgebraSpec("exists", (pred,))),
            ),
        )
        out, stats = _normalized(expr)
        assert stats.exists_unnests == 0
        env = {
            "emails": DataBag([E(1), E(5)]),
            "bl": DataBag([E(3)]),
        }
        assert evaluate(out, env) == DataBag([E(5)])


class TestFixpointAndSafety:
    def test_long_chain_reaches_single_comprehension(self):
        expr = Ref("xs")
        for i in range(6):
            expr = MapCall(
                expr, Lambda(("x",), BinOp("+", Ref("x"), Const(1)))
            )
        out, stats = _normalized(expr)
        assert isinstance(out, Comprehension)
        assert len(out.generators()) == 1
        assert stats.generator_unnests == 5
        assert evaluate(out, {"xs": DataBag([0])}) == DataBag([6])

    def test_variable_names_do_not_collide(self):
        # Inner and outer lambdas deliberately reuse the name `x`.
        chain = FlatMapCall(
            Ref("xs"),
            Lambda(
                ("x",),
                MapCall(
                    Ref("ys"),
                    Lambda(("x",), BinOp("*", Ref("x"), Const(2))),
                ),
            ),
        )
        out, _ = _normalized(chain)
        env = {"xs": DataBag([1, 2]), "ys": DataBag([5])}
        assert evaluate(out, env) == DataBag([10, 10])

    def test_normalize_is_idempotent(self):
        chain = FilterCall(
            MapCall(Ref("xs"), Lambda(("x",), Ref("x"))),
            Lambda(("y",), Compare(">", Ref("y"), Const(0))),
        )
        once, _ = _normalized(chain)
        stats = NormalizeStats()
        twice = normalize(once, stats=stats)
        assert twice == once
        assert stats.total() == 0


@given(st.lists(st.integers(min_value=-20, max_value=20), max_size=20))
def test_normalization_preserves_semantics_map_filter(xs):
    chain = FilterCall(
        MapCall(Ref("xs"), Lambda(("x",), BinOp("*", Ref("x"), Const(2)))),
        Lambda(("y",), Compare(">", Ref("y"), Const(0))),
    )
    env = {"xs": DataBag(xs)}
    out, _ = _normalized(chain)
    assert evaluate(out, env) == evaluate(chain, env)


@given(
    st.lists(st.integers(min_value=0, max_value=5), max_size=15),
    st.lists(st.integers(min_value=0, max_value=5), max_size=10),
)
def test_exists_unnesting_preserves_semantics(emails, blacklist):
    pred = Lambda(("b",), Compare("==", Ref("b"), Ref("e")))
    expr = FilterCall(
        Ref("emails"),
        Lambda(
            ("e",), FoldCall(Ref("bl"), AlgebraSpec("exists", (pred,)))
        ),
    )
    env = {"emails": DataBag(emails), "bl": DataBag(blacklist)}
    out, _ = _normalized(expr)
    assert evaluate(out, env) == evaluate(expr, env)

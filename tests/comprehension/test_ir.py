"""Tests for comprehension nodes (paper Section 2.2.3)."""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    Compare,
    Const,
    Lambda,
    Ref,
    TupleExpr,
    evaluate,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    Flatten,
    FoldKind,
    GenMode,
    Generator,
    Guard,
)
from repro.core.databag import DataBag
from repro.errors import ComprehensionError


@dataclass(frozen=True)
class E:
    ip: int


def bag_comp(head, *quals):
    return Comprehension(head=head, qualifiers=quals, kind=BAG)


class TestEvaluation:
    def test_single_generator(self):
        comp = bag_comp(
            BinOp("*", Ref("x"), Const(2)), Generator("x", Ref("xs"))
        )
        assert evaluate(comp, {"xs": DataBag([1, 2])}) == DataBag([2, 4])

    def test_guard_filters(self):
        comp = bag_comp(
            Ref("x"),
            Generator("x", Ref("xs")),
            Guard(Compare(">", Ref("x"), Const(1))),
        )
        assert evaluate(comp, {"xs": DataBag([1, 2, 3])}) == DataBag([2, 3])

    def test_join_semantics(self):
        # [[ (x, y) | x <- xs, y <- ys, x == y ]]
        comp = bag_comp(
            TupleExpr((Ref("x"), Ref("y"))),
            Generator("x", Ref("xs")),
            Generator("y", Ref("ys")),
            Guard(Compare("==", Ref("x"), Ref("y"))),
        )
        env = {"xs": DataBag([1, 2, 2]), "ys": DataBag([2, 3])}
        assert evaluate(comp, env) == DataBag([(2, 2), (2, 2)])

    def test_generator_over_host_sequence(self):
        comp = bag_comp(Ref("x"), Generator("x", Const([1, 2])))
        assert evaluate(comp) == DataBag([1, 2])

    def test_generator_over_scalar_raises(self):
        comp = bag_comp(Ref("x"), Generator("x", Const(5)))
        with pytest.raises(ComprehensionError, match="non-bag"):
            evaluate(comp)

    def test_fold_kind_produces_scalar(self):
        comp = Comprehension(
            head=Ref("x"),
            qualifiers=(Generator("x", Ref("xs")),),
            kind=FoldKind(AlgebraSpec("sum")),
        )
        assert evaluate(comp, {"xs": DataBag([1, 2, 3])}) == 6

    def test_nested_comprehension_in_head(self):
        inner = Comprehension(
            head=Ref("y"),
            qualifiers=(
                Generator("y", Ref("ys")),
                Guard(Compare("==", Ref("y"), Ref("x"))),
            ),
            kind=FoldKind(AlgebraSpec("count")),
        )
        outer = bag_comp(
            TupleExpr((Ref("x"), inner)), Generator("x", Ref("xs"))
        )
        env = {"xs": DataBag([1, 2]), "ys": DataBag([1, 1, 3])}
        assert evaluate(outer, env) == DataBag([(1, 2), (2, 0)])


class TestExistsModes:
    def _comp(self, mode):
        return bag_comp(
            Ref("e"),
            Generator("e", Ref("emails")),
            Generator("b", Ref("bl"), mode),
            Guard(
                Compare(
                    "==", Attr(Ref("b"), "ip"), Attr(Ref("e"), "ip")
                )
            ),
        )

    def test_exists_semantics_preserve_multiplicity(self):
        env = {
            "emails": DataBag([E(1), E(2), E(2), E(3)]),
            "bl": DataBag([E(2), E(2), E(9)]),
        }
        result = evaluate(self._comp(GenMode.EXISTS), env)
        # Each matching email appears once per its own multiplicity,
        # regardless of how many blacklist rows match.
        assert result == DataBag([E(2), E(2)])

    def test_not_exists_semantics(self):
        env = {
            "emails": DataBag([E(1), E(2), E(3)]),
            "bl": DataBag([E(2)]),
        }
        result = evaluate(self._comp(GenMode.NOT_EXISTS), env)
        assert result == DataBag([E(1), E(3)])

    def test_exists_var_may_not_escape_to_head(self):
        comp = bag_comp(
            Ref("b"),
            Generator("e", Ref("emails")),
            Generator("b", Ref("bl"), GenMode.EXISTS),
            Guard(Compare("==", Ref("b"), Ref("e"))),
        )
        env = {"emails": DataBag([1]), "bl": DataBag([1])}
        with pytest.raises(ComprehensionError, match="head"):
            evaluate(comp, env)

    def test_exists_var_may_not_escape_to_later_generator(self):
        comp = bag_comp(
            Ref("e"),
            Generator("e", Ref("emails")),
            Generator("b", Ref("bl"), GenMode.EXISTS),
            Guard(Compare("==", Ref("b"), Ref("e"))),
            Generator("z", Ref("b")),
        )
        env = {"emails": DataBag([1]), "bl": DataBag([1])}
        with pytest.raises(ComprehensionError, match="escapes"):
            evaluate(comp, env)


class TestStructure:
    def test_generators_and_guards(self):
        comp = bag_comp(
            Ref("x"),
            Generator("x", Ref("xs")),
            Guard(Const(True)),
        )
        assert len(comp.generators()) == 1
        assert len(comp.guards()) == 1

    def test_free_vars_sequential_scoping(self):
        comp = bag_comp(
            BinOp("+", Ref("x"), Ref("k")),
            Generator("x", Ref("xs")),
            Generator("y", Attr(Ref("x"), "items")),
        )
        assert comp.free_vars() == frozenset({"xs", "k"})

    def test_substitute_free_name(self):
        comp = bag_comp(Ref("x"), Generator("x", Ref("xs")))
        out = comp.substitute({"xs": Ref("other")})
        assert out.generators()[0].source == Ref("other")

    def test_substitute_shadowed_name_untouched(self):
        comp = bag_comp(Ref("x"), Generator("x", Ref("xs")))
        out = comp.substitute({"x": Const(1)})
        assert out.head == Ref("x")

    def test_substitute_alpha_renames_on_capture(self):
        # [[ x + y | x <- xs ]][y := x]  — the binder must rename.
        comp = bag_comp(
            BinOp("+", Ref("x"), Ref("y")), Generator("x", Ref("xs"))
        )
        out = comp.substitute({"y": Ref("x")})
        (gen,) = out.generators()
        assert gen.var != "x"
        result = evaluate(out, {"xs": DataBag([1, 2]), "x": 100})
        assert result == DataBag([101, 102])

    def test_fold_kind_repr(self):
        kind = FoldKind(AlgebraSpec("sum"))
        assert "sum" in repr(kind)
        assert repr(BAG) == "Bag"

    def test_generator_evaluate_directly_is_an_error(self):
        with pytest.raises(ComprehensionError):
            evaluate(Generator("x", Ref("xs")), {"xs": DataBag([])})


class TestFlatten:
    def test_flatten_bags(self):
        comp = bag_comp(Ref("inner"), Generator("inner", Ref("nested")))
        env = {"nested": DataBag([DataBag([1, 2]), DataBag([3])])}
        assert evaluate(Flatten(comp), env) == DataBag([1, 2, 3])

    def test_flatten_host_collections(self):
        comp = bag_comp(Ref("t"), Generator("t", Ref("nested")))
        env = {"nested": DataBag([(1, 2), (3,)])}
        assert evaluate(Flatten(comp), env) == DataBag([1, 2, 3])

    def test_flatten_scalars_rejected(self):
        comp = bag_comp(Ref("t"), Generator("t", Ref("nested")))
        with pytest.raises(ComprehensionError):
            evaluate(Flatten(comp), {"nested": DataBag([1])})

"""Tests for the lifted expression language."""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    AggByCall,
    AlgebraSpec,
    Attr,
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    DistinctCall,
    Env,
    FetchCall,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    IfElse,
    Index,
    Lambda,
    ListExpr,
    MapCall,
    MinusCall,
    PlusCall,
    Ref,
    TupleExpr,
    UnaryOp,
    evaluate,
    free_vars,
    substitute,
    transform,
    walk,
)
from repro.core.databag import DataBag
from repro.errors import ComprehensionError


@dataclass(frozen=True)
class Rec:
    a: int
    b: str


class TestEnv:
    def test_lookup(self):
        assert Env({"x": 1}).lookup("x") == 1

    def test_unbound_raises(self):
        with pytest.raises(ComprehensionError, match="unbound"):
            Env({}).lookup("missing")

    def test_child_shadows(self):
        env = Env({"x": 1}).child({"x": 2})
        assert env.lookup("x") == 2

    def test_contains(self):
        assert "x" in Env({"x": None})
        assert "y" not in Env({"x": None})

    def test_of_idempotent(self):
        env = Env({"x": 1})
        assert Env.of(env) is env


class TestScalarEvaluation:
    def test_const(self):
        assert evaluate(Const(42)) == 42

    def test_ref(self):
        assert evaluate(Ref("x"), {"x": "hi"}) == "hi"

    def test_attr(self):
        assert evaluate(Attr(Ref("r"), "a"), {"r": Rec(5, "z")}) == 5

    def test_index(self):
        assert evaluate(Index(Ref("t"), Const(1)), {"t": (7, 8)}) == 8

    def test_tuple_and_list(self):
        assert evaluate(TupleExpr((Const(1), Const(2)))) == (1, 2)
        assert evaluate(ListExpr((Const(1),))) == [1]

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7), ("-", 3), ("*", 10), ("/", 2.5), ("//", 2), ("%", 1), ("**", 25)],
    )
    def test_binops(self, op, expected):
        assert evaluate(BinOp(op, Const(5), Const(2))) == expected

    def test_unary(self):
        assert evaluate(UnaryOp("-", Const(5))) == -5
        assert evaluate(UnaryOp("not", Const(False))) is True

    def test_unknown_unary_raises(self):
        with pytest.raises(ComprehensionError):
            evaluate(UnaryOp("~", Const(5)))

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("==", False),
            ("!=", True),
            ("<", True),
            ("<=", True),
            (">", False),
            (">=", False),
        ],
    )
    def test_compare(self, op, expected):
        assert evaluate(Compare(op, Const(1), Const(2))) is expected

    def test_in(self):
        assert evaluate(Compare("in", Const(1), Const((1, 2)))) is True
        assert evaluate(Compare("not in", Const(9), Const((1, 2)))) is True

    def test_boolop_short_circuits(self):
        calls = []

        def boom():
            calls.append(1)
            return True

        expr = BoolOp("and", (Const(False), Call(Const(boom))))
        assert evaluate(expr) is False
        assert not calls
        expr = BoolOp("or", (Const(True), Call(Const(boom))))
        assert evaluate(expr) is True
        assert not calls

    def test_ifelse(self):
        expr = IfElse(Ref("c"), Const("yes"), Const("no"))
        assert evaluate(expr, {"c": True}) == "yes"
        assert evaluate(expr, {"c": False}) == "no"

    def test_call_with_kwargs(self):
        expr = Call(
            Const(Rec), args=(Const(1),), kwargs=(("b", Const("x")),)
        )
        assert evaluate(expr) == Rec(1, "x")

    def test_lambda_closure(self):
        fn = evaluate(
            Lambda(("x",), BinOp("+", Ref("x"), Ref("y"))), {"y": 10}
        )
        assert fn(5) == 15

    def test_lambda_arity_checked(self):
        fn = evaluate(Lambda(("x",), Ref("x")))
        with pytest.raises(ComprehensionError):
            fn(1, 2)


class TestBagOperatorEvaluation:
    def test_map(self):
        expr = MapCall(Ref("xs"), Lambda(("x",), BinOp("*", Ref("x"), Const(2))))
        assert evaluate(expr, {"xs": DataBag([1, 2])}) == DataBag([2, 4])

    def test_flat_map(self):
        expr = FlatMapCall(
            Ref("xs"), Lambda(("x",), TupleExpr((Ref("x"), Ref("x"))))
        )
        assert evaluate(expr, {"xs": DataBag([1])}) == DataBag([1, 1])

    def test_filter(self):
        expr = FilterCall(
            Ref("xs"), Lambda(("x",), Compare(">", Ref("x"), Const(1)))
        )
        assert evaluate(expr, {"xs": DataBag([1, 2, 3])}) == DataBag([2, 3])

    def test_group_by(self):
        expr = GroupByCall(
            Ref("xs"), Lambda(("x",), BinOp("%", Ref("x"), Const(2)))
        )
        groups = evaluate(expr, {"xs": DataBag([1, 2, 3])})
        assert {g.key for g in groups} == {0, 1}

    def test_fold_aliases(self):
        env = {"xs": DataBag([3, 1, 2])}
        assert evaluate(FoldCall(Ref("xs"), AlgebraSpec("sum")), env) == 6
        assert evaluate(FoldCall(Ref("xs"), AlgebraSpec("count")), env) == 3
        assert evaluate(FoldCall(Ref("xs"), AlgebraSpec("min")), env) == 1
        assert (
            evaluate(FoldCall(Ref("xs"), AlgebraSpec("is_empty")), env)
            is False
        )

    def test_fold_generic(self):
        spec = AlgebraSpec(
            "fold",
            (
                Const(0),
                Lambda(("x",), Const(1)),
                Lambda(("a", "b"), BinOp("+", Ref("a"), Ref("b"))),
            ),
        )
        assert (
            evaluate(FoldCall(Ref("xs"), spec), {"xs": DataBag([7, 8])})
            == 2
        )

    def test_min_by_with_env_dependent_key(self):
        spec = AlgebraSpec(
            "min_by",
            (Lambda(("c",), Call(Ref("dist"), (Ref("c"),))),),
        )
        env = {
            "xs": DataBag([1, 5, 3]),
            "dist": lambda c: abs(c - 4),
        }
        assert evaluate(FoldCall(Ref("xs"), spec), env) == 5

    def test_plus_minus_distinct(self):
        env = {"a": DataBag([1, 2]), "b": DataBag([2])}
        assert evaluate(PlusCall(Ref("a"), Ref("b")), env) == DataBag(
            [1, 2, 2]
        )
        assert evaluate(MinusCall(Ref("a"), Ref("b")), env) == DataBag([1])
        assert evaluate(
            DistinctCall(PlusCall(Ref("a"), Ref("b"))), env
        ) == DataBag([1, 2])

    def test_bag_literal_and_fetch(self):
        assert evaluate(BagLiteral(Const([1, 2]))) == DataBag([1, 2])
        assert sorted(
            evaluate(FetchCall(Ref("xs")), {"xs": DataBag([2, 1])})
        ) == [1, 2]

    def test_bag_op_on_non_bag_raises(self):
        expr = MapCall(Ref("xs"), Lambda(("x",), Ref("x")))
        with pytest.raises(ComprehensionError, match="DataBag"):
            evaluate(expr, {"xs": 42})

    def test_agg_by(self):
        expr = AggByCall(
            source=Ref("xs"),
            key=Lambda(("x",), BinOp("%", Ref("x"), Const(2))),
            specs=(AlgebraSpec("sum"), AlgebraSpec("count")),
        )
        result = {
            r.key: r.aggs
            for r in evaluate(expr, {"xs": DataBag([1, 2, 3, 4])})
        }
        assert result == {0: (6, 2), 1: (4, 2)}


class TestAlgebraSpec:
    def test_unknown_alias_rejected(self):
        with pytest.raises(ComprehensionError, match="unknown fold"):
            AlgebraSpec("frobnicate")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ComprehensionError, match="arguments"):
            AlgebraSpec("sum", (Const(1),))

    def test_fused_pipeline(self):
        spec = AlgebraSpec("sum").fused_with(
            "x",
            BinOp("*", Ref("x"), Const(2)),
            (Compare(">", Ref("x"), Const(1)),),
        )
        algebra = spec.make_algebra(Env({}))
        assert algebra([1, 2, 3]) == 10  # (2+3)*2

    def test_double_fusion_rejected(self):
        spec = AlgebraSpec("sum").fused_with("x", Ref("x"), ())
        with pytest.raises(ComprehensionError, match="already"):
            spec.fused_with("y", Ref("y"), ())

    def test_free_vars_respect_fused_binder(self):
        spec = AlgebraSpec("sum").fused_with(
            "x", BinOp("+", Ref("x"), Ref("outer")), ()
        )
        assert spec.free_vars() == frozenset({"outer"})


class TestStructuralOperations:
    def test_free_vars(self):
        expr = BinOp("+", Ref("x"), Lambda(("y",), Ref("y")))
        assert free_vars(expr) == frozenset({"x"})

    def test_lambda_shadows(self):
        expr = Lambda(("x",), BinOp("+", Ref("x"), Ref("z")))
        assert free_vars(expr) == frozenset({"z"})

    def test_substitute(self):
        expr = BinOp("+", Ref("x"), Ref("y"))
        out = substitute(expr, {"x": Const(1)})
        assert evaluate(out, {"y": 2}) == 3

    def test_substitute_respects_binders(self):
        expr = Lambda(("x",), Ref("x"))
        assert substitute(expr, {"x": Const(99)}) == expr

    def test_substitution_avoids_capture(self):
        # (\x -> x + y)[y := x]  must not capture the binder's x.
        lam = Lambda(("x",), BinOp("+", Ref("x"), Ref("y")))
        out = substitute(lam, {"y": Ref("x")})
        fn = evaluate(out, {"x": 100})
        assert fn(1) == 101  # param + outer x, not param + param

    def test_walk_visits_all_nodes(self):
        expr = BinOp("+", Ref("x"), Const(1))
        kinds = [type(n).__name__ for n in walk(expr)]
        assert kinds == ["BinOp", "Ref", "Const"]

    def test_transform_bottom_up(self):
        expr = BinOp("+", Const(1), Const(2))

        def fold_consts(node):
            if (
                isinstance(node, BinOp)
                and isinstance(node.left, Const)
                and isinstance(node.right, Const)
            ):
                return Const(evaluate(node))
            return node

        assert transform(expr, fold_consts) == Const(3)

    def test_rebuild_preserves_unchanged_nodes(self):
        expr = BinOp("+", Ref("x"), Const(1))
        assert expr.rebuild(lambda c: c) is expr

"""Tests for the MC⁻¹ resugaring scheme (paper Section 4.1)."""

from repro.comprehension.exprs import (
    AlgebraSpec,
    BinOp,
    Compare,
    Const,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    Lambda,
    MapCall,
    Ref,
    evaluate,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    Flatten,
    FoldKind,
    Guard,
)
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag


def double():
    return Lambda(("x",), BinOp("*", Ref("x"), Const(2)))


def positive():
    return Lambda(("x",), Compare(">", Ref("x"), Const(0)))


class TestRules:
    def test_map_rule(self):
        out = resugar(MapCall(Ref("xs"), double()))
        assert isinstance(out, Comprehension)
        assert out.kind is BAG
        (gen,) = out.generators()
        assert gen.source == Ref("xs")
        assert not out.guards()

    def test_with_filter_rule(self):
        out = resugar(FilterCall(Ref("xs"), positive()))
        assert isinstance(out, Comprehension)
        (gen,) = out.generators()
        # Head is the bound variable itself; the predicate is a guard.
        assert out.head == Ref(gen.var)
        assert len(out.guards()) == 1

    def test_flat_map_rule_wraps_in_flatten(self):
        out = resugar(
            FlatMapCall(Ref("xs"), Lambda(("x",), Ref("x")))
        )
        assert isinstance(out, Flatten)
        assert isinstance(out.source, Comprehension)

    def test_fold_rule(self):
        out = resugar(FoldCall(Ref("xs"), AlgebraSpec("sum")))
        assert isinstance(out, Comprehension)
        assert isinstance(out.kind, FoldKind)
        assert out.kind.spec.alias == "sum"

    def test_chain_resugars_nested(self):
        chain = FilterCall(MapCall(Ref("xs"), double()), positive())
        out = resugar(chain)
        assert isinstance(out, Comprehension)
        (gen,) = out.generators()
        assert isinstance(gen.source, Comprehension)

    def test_group_by_source_untouched_but_inner_resugared(self):
        expr = GroupByCall(
            MapCall(Ref("xs"), double()), Lambda(("x",), Ref("x"))
        )
        out = resugar(expr)
        assert isinstance(out, GroupByCall)
        assert isinstance(out.source, Comprehension)

    def test_non_chain_nodes_untouched(self):
        assert resugar(Ref("xs")) == Ref("xs")


class TestSemanticPreservation:
    def test_map_filter_chain(self):
        chain = FilterCall(MapCall(Ref("xs"), double()), positive())
        env = {"xs": DataBag([-2, 1, 3])}
        assert evaluate(resugar(chain), env) == evaluate(chain, env)

    def test_fold_over_chain(self):
        chain = FoldCall(
            MapCall(Ref("xs"), double()), AlgebraSpec("sum")
        )
        env = {"xs": DataBag([1, 2, 3])}
        assert evaluate(resugar(chain), env) == evaluate(chain, env) == 12

    def test_flat_map_chain(self):
        chain = FlatMapCall(
            Ref("xs"),
            Lambda(("x",), MapCall(Ref("ys"), double())),
        )
        env = {"xs": DataBag([1, 2]), "ys": DataBag([5])}
        assert evaluate(resugar(chain), env) == evaluate(chain, env)

    def test_lambda_body_becomes_head_with_param_renamed_consistently(self):
        out = resugar(MapCall(Ref("xs"), double()))
        (gen,) = out.generators()
        # The head references exactly the generator variable.
        assert out.head.free_vars() == frozenset({gen.var})

"""Property tests: normalization invariants over generated chains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comprehension.exprs import (
    AlgebraSpec,
    BinOp,
    Compare,
    Const,
    FilterCall,
    FlatMapCall,
    FoldCall,
    Lambda,
    MapCall,
    Ref,
    evaluate,
)
from repro.comprehension.ir import Comprehension, Flatten
from repro.comprehension.normalize import NormalizeStats, normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag

# Random monad-operator chains over a single source bag.


def _map_stage(expr, k):
    return MapCall(
        expr, Lambda(("x",), BinOp("+", Ref("x"), Const(k)))
    )


def _filter_stage(expr, k):
    return FilterCall(
        expr, Lambda(("x",), Compare(">", Ref("x"), Const(k)))
    )


def _flat_map_stage(expr, _k):
    # x -> the two-element bag {x, x+100} via a nested chain.
    return FlatMapCall(
        expr,
        Lambda(
            ("x",),
            MapCall(
                Ref("seeds"),
                Lambda(("s",), BinOp("+", Ref("s"), Ref("x"))),
            ),
        ),
    )


_STAGES = (_map_stage, _filter_stage, _flat_map_stage)

chains = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_STAGES) - 1),
        st.integers(min_value=-5, max_value=5),
    ),
    min_size=1,
    max_size=6,
)

bags = st.lists(st.integers(min_value=-20, max_value=20), max_size=15)


def build(chain):
    expr = Ref("xs")
    for idx, k in chain:
        expr = _STAGES[idx](expr, k)
    return expr


@settings(max_examples=60, deadline=None)
@given(chains, bags, bags)
def test_normalization_preserves_semantics(chain, xs, seeds):
    expr = build(chain)
    env = {"xs": DataBag(xs), "seeds": DataBag(seeds)}
    normalized = normalize(resugar(expr))
    assert evaluate(normalized, env) == evaluate(expr, env)


@settings(max_examples=60, deadline=None)
@given(chains, bags, bags)
def test_normalization_preserves_free_variables(chain, xs, seeds):
    expr = build(chain)
    normalized = normalize(resugar(expr))
    assert normalized.free_vars() == expr.free_vars()


@settings(max_examples=60, deadline=None)
@given(chains)
def test_normalization_is_idempotent(chain):
    expr = normalize(resugar(build(chain)))
    stats = NormalizeStats()
    again = normalize(expr, stats=stats)
    assert again == expr
    assert stats.total() == 0


@settings(max_examples=60, deadline=None)
@given(chains)
def test_pure_map_filter_chains_collapse_to_one_comprehension(chain):
    # Without flat_map stages, the fixpoint is a single flat
    # comprehension over the source.
    pure = [(i, k) for i, k in chain if i != 2]
    if not pure:
        return
    normalized = normalize(resugar(build(pure)))
    assert isinstance(normalized, Comprehension)
    assert not isinstance(normalized, Flatten)
    (gen,) = normalized.generators()
    assert gen.source == Ref("xs")


@settings(max_examples=40, deadline=None)
@given(chains, bags, bags)
def test_terminal_fold_normalization_preserves_semantics(
    chain, xs, seeds
):
    expr = FoldCall(build(chain), AlgebraSpec("sum"))
    env = {"xs": DataBag(xs), "seeds": DataBag(seeds)}
    normalized = normalize(resugar(expr))
    assert evaluate(normalized, env) == evaluate(expr, env)

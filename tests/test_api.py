"""Tests for the public API facade (`repro.api`)."""

from dataclasses import dataclass

import pytest

import repro
from repro.api import (
    CsvFormat,
    DataBag,
    EmmaError,
    JsonLinesFormat,
    StatefulBag,
    read,
    stateful,
    write,
)


@dataclass(frozen=True)
class Row:
    id: int
    name: str


class TestHostModeHelpers:
    def test_read_write_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        fmt = CsvFormat(Row)
        bag = DataBag([Row(1, "a"), Row(2, "b")])
        write(path, fmt, bag)
        assert read(path, fmt) == bag

    def test_read_write_jsonl(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        fmt = JsonLinesFormat(Row)
        bag = DataBag([Row(1, "a")])
        write(path, fmt, bag)
        assert read(path, fmt) == bag

    def test_unsupported_format_rejected(self, tmp_path):
        with pytest.raises(EmmaError, match="format"):
            read(tmp_path / "x", object())
        with pytest.raises(EmmaError, match="format"):
            write(tmp_path / "x", object(), DataBag([1]))

    def test_stateful_helper(self):
        state = stateful(DataBag([Row(1, "a")]))
        assert isinstance(state, StatefulBag)
        assert state.get(1) == Row(1, "a")

    def test_stateful_with_custom_key(self):
        state = stateful(DataBag([(5, "x")]), key=lambda t: t[0])
        assert state.get(5) == (5, "x")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro.api as api

        for name in api.__all__:
            assert hasattr(api, name), name

"""Differential fuzzing: random pipelines, every backend, every config.

Hypothesis generates random operator pipelines over integer bags —
maps, filters, distinct, union/minus, correlated ``exists`` filters,
group-aggregations — and the resulting IR is executed:

* directly, via the expression interpreter (the semantic oracle);
* compiled (resugar -> normalize -> fold-group fusion -> lower ->
  operator chaining) and run on the Spark-like and Flink-like engines,
  with unnesting, fusion, and physical chaining independently toggled.

Every combination must produce the same multiset.  This is the
paper's central soundness claim — the rewrites and the parallel
lowering never change program meaning — exercised over a far larger
program space than the hand-written workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BinOp,
    Compare,
    Const,
    DistinctCall,
    FilterCall,
    FoldCall,
    GroupByCall,
    Lambda,
    MapCall,
    MinusCall,
    PlusCall,
    Ref,
    evaluate,
)
from repro.comprehension.ir import BAG, Comprehension, Generator
from repro.comprehension.normalize import normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.faults import (
    CRASH,
    STRAGGLER,
    WORKER_LOSS,
    FaultEvent,
    FaultPlan,
)
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.lowering.chaining import chain_operators
from repro.lowering.combinators import CFold
from repro.lowering.rules import lower
from repro.optimizer.fold_group_fusion import fold_group_fusion

# ---------------------------------------------------------------------------
# Pipeline stages: each maps a bag-of-ints IR expression to another one.
# ---------------------------------------------------------------------------


def _stage_map(expr, k):
    return MapCall(
        expr, Lambda(("x",), BinOp("+", Ref("x"), Const(k)))
    )


def _stage_scale(expr, k):
    return MapCall(
        expr, Lambda(("x",), BinOp("*", Ref("x"), Const(k)))
    )


def _stage_mod(expr, k):
    m = max(2, abs(k))
    return MapCall(
        expr, Lambda(("x",), BinOp("%", Ref("x"), Const(m)))
    )


def _stage_filter_gt(expr, k):
    return FilterCall(
        expr, Lambda(("x",), Compare(">", Ref("x"), Const(k)))
    )


def _stage_filter_even(expr, _k):
    return FilterCall(
        expr,
        Lambda(
            ("x",),
            Compare("==", BinOp("%", Ref("x"), Const(2)), Const(0)),
        ),
    )


def _stage_distinct(expr, _k):
    return DistinctCall(expr)


def _stage_union(expr, _k):
    return PlusCall(expr, Ref("ys"))


def _stage_minus(expr, _k):
    return MinusCall(expr, Ref("ys"))


def _stage_exists(expr, k):
    # keep x if some y in ys has y % k == x % k  — a correlated
    # existential that unnesting turns into a semi-join.
    m = max(2, abs(k))
    predicate = Lambda(
        ("y",),
        Compare(
            "==",
            BinOp("%", Ref("y"), Const(m)),
            BinOp("%", Ref("x"), Const(m)),
        ),
    )
    return FilterCall(
        expr,
        Lambda(
            ("x",), FoldCall(Ref("ys"), AlgebraSpec("exists", (predicate,)))
        ),
    )


def _stage_group_agg(expr, k):
    # group by x % k; emit key + 3*count + sum — back to bag-of-ints.
    m = max(2, abs(k))
    values = Attr(Ref("g"), "values")
    count = FoldCall(values, AlgebraSpec("count"))
    total = FoldCall(values, AlgebraSpec("sum"))
    head = BinOp(
        "+",
        Attr(Ref("g"), "key"),
        BinOp("+", BinOp("*", count, Const(3)), total),
    )
    return Comprehension(
        head=head,
        qualifiers=(
            Generator(
                "g",
                GroupByCall(
                    expr,
                    Lambda(("x",), BinOp("%", Ref("x"), Const(m))),
                ),
            ),
        ),
        kind=BAG,
    )


_STAGES = (
    _stage_map,
    _stage_scale,
    _stage_mod,
    _stage_filter_gt,
    _stage_filter_even,
    _stage_distinct,
    _stage_union,
    _stage_minus,
    _stage_exists,
    _stage_group_agg,
)

stage_descriptors = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_STAGES) - 1),
        st.integers(min_value=-4, max_value=6),
    ),
    min_size=1,
    max_size=5,
)

int_bags = st.lists(
    st.integers(min_value=-30, max_value=30), max_size=25
)


def build_pipeline(descriptors):
    expr = Ref("xs")
    for stage_index, k in descriptors:
        expr = _STAGES[stage_index](expr, k)
    return expr


def run_compiled(expr, env, engine, unnest, fuse, chain=False):
    rewritten = normalize(resugar(expr), unnest_exists=unnest)
    if fuse:
        rewritten = fold_group_fusion(rewritten)
    plan = lower(rewritten)
    if chain:
        plan = chain_operators(plan)
    if isinstance(plan, CFold):
        return engine.run_scalar(plan, env)
    return DataBag(engine.collect(engine.defer(plan, env)))


@settings(max_examples=40, deadline=None)
@given(stage_descriptors, int_bags, int_bags)
def test_every_backend_and_config_matches_the_oracle(
    descriptors, xs, ys
):
    expr = build_pipeline(descriptors)
    env = {"xs": DataBag(xs), "ys": DataBag(ys)}
    oracle = evaluate(expr, dict(env))

    for engine_cls in (SparkLikeEngine, FlinkLikeEngine):
        for unnest in (False, True):
            for fuse in (False, True):
                engine = engine_cls(
                    cluster=ClusterConfig(num_workers=3)
                )
                result = run_compiled(
                    expr, dict(env), engine, unnest, fuse
                )
                assert result == oracle, (
                    f"{engine_cls.__name__} unnest={unnest} "
                    f"fuse={fuse} diverged"
                )


@settings(max_examples=25, deadline=None)
@given(stage_descriptors, int_bags, int_bags)
def test_terminal_folds_match_the_oracle(descriptors, xs, ys):
    expr = FoldCall(build_pipeline(descriptors), AlgebraSpec("sum"))
    env = {"xs": DataBag(xs), "ys": DataBag(ys)}
    oracle = evaluate(expr, dict(env))
    engine = SparkLikeEngine(cluster=ClusterConfig(num_workers=4))
    assert run_compiled(expr, dict(env), engine, True, True) == oracle


# ---------------------------------------------------------------------------
# Fault-plan fuzzing: random pipelines under random deterministic fault
# schedules must still match the oracle bit for bit — crashes, worker
# losses, and stragglers may only cost simulated time.
# ---------------------------------------------------------------------------

_EVENT_MIXES = (
    (),
    (FaultEvent(CRASH, task=1),),
    (FaultEvent(WORKER_LOSS, task=2),),
    (
        FaultEvent(CRASH, task=0),
        FaultEvent(STRAGGLER, task=1),
        FaultEvent(WORKER_LOSS, task=3),
    ),
)

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    task_crash_prob=st.floats(min_value=0.0, max_value=0.25),
    worker_loss_prob=st.floats(min_value=0.0, max_value=0.08),
    straggler_prob=st.floats(min_value=0.0, max_value=0.25),
    crash_attempts=st.integers(min_value=1, max_value=2),
    max_task_crashes=st.just(32),
    max_worker_losses=st.just(4),
    max_stragglers=st.just(32),
    events=st.sampled_from(_EVENT_MIXES),
)


@settings(max_examples=25, deadline=None)
@given(stage_descriptors, int_bags, int_bags, fault_plans)
def test_fault_injection_never_changes_results(
    descriptors, xs, ys, plan
):
    expr = build_pipeline(descriptors)
    env = {"xs": DataBag(xs), "ys": DataBag(ys)}
    oracle = evaluate(expr, dict(env))

    for engine_cls in (SparkLikeEngine, FlinkLikeEngine):
        engine = engine_cls(
            cluster=ClusterConfig(num_workers=3), fault_plan=plan
        )
        result = run_compiled(
            expr, dict(env), engine, True, True, chain=True
        )
        assert result == oracle, (
            f"{engine_cls.__name__} diverged under fault plan "
            f"seed={plan.seed}"
        )


@settings(max_examples=10, deadline=None)
@given(stage_descriptors, int_bags, int_bags)
def test_fault_schedule_is_reproducible(descriptors, xs, ys):
    """Same plan, same program → identical injections and timings."""
    expr = build_pipeline(descriptors)
    env = {"xs": DataBag(xs), "ys": DataBag(ys)}
    plan = FaultPlan.aggressive(seed=29)
    observations = []
    for _ in range(2):
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=3), fault_plan=plan
        )
        run_compiled(expr, dict(env), engine, True, True, chain=True)
        m = engine.metrics
        observations.append(
            (
                m.tasks_retried,
                m.workers_lost,
                m.stragglers_injected,
                m.recovery_seconds,
                m.simulated_seconds,
            )
        )
    assert observations[0] == observations[1]


@settings(max_examples=40, deadline=None)
@given(stage_descriptors, int_bags, int_bags)
def test_operator_chaining_never_changes_results(descriptors, xs, ys):
    """Physical chaining on vs off, on every engine, vs the oracle.

    This is the soundness obligation of the fused per-partition
    kernels: chain discovery, UDF inlining, and the map-side
    aggregation fusion must be invisible in the results.
    """
    expr = build_pipeline(descriptors)
    env = {"xs": DataBag(xs), "ys": DataBag(ys)}
    oracle = evaluate(expr, dict(env))

    for engine_cls in (SparkLikeEngine, FlinkLikeEngine):
        results = {}
        for chain in (False, True):
            engine = engine_cls(cluster=ClusterConfig(num_workers=3))
            results[chain] = run_compiled(
                expr, dict(env), engine, True, True, chain=chain
            )
        assert results[True] == results[False], (
            f"{engine_cls.__name__}: chaining changed the result"
        )
        assert results[True] == oracle, (
            f"{engine_cls.__name__}: chained run diverged from oracle"
        )

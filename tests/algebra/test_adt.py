"""Tests for bags as algebraic data types (paper Section 2.2.1)."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.adt import (
    Cons,
    EmpIns,
    EmpUnion,
    Sng,
    Uni,
    bag_of_ins_tree,
    bag_of_union_tree,
    ins_of_union,
    ins_tree_of,
    trees_equivalent,
    union_of_ins,
    union_tree_of,
    union_tree_of_partitions,
)


class TestInsertRepresentation:
    def test_empty_tree(self):
        tree = ins_tree_of([])
        assert isinstance(tree, EmpIns)
        assert list(tree) == []
        assert len(tree) == 0

    def test_singleton_tree(self):
        tree = ins_tree_of([42])
        assert isinstance(tree, Cons)
        assert tree.head == 42
        assert isinstance(tree.tail, EmpIns)

    def test_iteration_order_is_insertion_order(self):
        tree = ins_tree_of([2, 42])
        assert list(tree) == [2, 42]

    def test_len_counts_elements(self):
        assert len(ins_tree_of([1, 1, 2])) == 3

    def test_quotient_map_collapses_to_multiset(self):
        assert bag_of_ins_tree(ins_tree_of([2, 42])) == Counter(
            {2: 1, 42: 1}
        )

    def test_eq_comm_ins_identifies_permutations(self):
        # cons 2 (cons 42 emp) == cons 42 (cons 2 emp) in the quotient.
        a = ins_tree_of([2, 42])
        b = ins_tree_of([42, 2])
        assert a != b  # the trees themselves differ ...
        assert bag_of_ins_tree(a) == bag_of_ins_tree(b)  # ... values agree

    def test_duplicates_preserved(self):
        assert bag_of_ins_tree(ins_tree_of([1, 1, 1])) == Counter(
            {1: 3}
        )


class TestUnionRepresentation:
    def test_empty(self):
        tree = union_tree_of([])
        assert isinstance(tree, EmpUnion)
        assert list(tree) == []

    def test_singleton(self):
        tree = union_tree_of([7])
        assert isinstance(tree, Sng)
        assert list(tree) == [7]
        assert len(tree) == 1

    def test_two_elements_make_one_uni(self):
        tree = union_tree_of([3, 5])
        assert isinstance(tree, Uni)
        assert bag_of_union_tree(tree) == Counter({3: 1, 5: 1})

    def test_balanced_construction_is_logarithmic(self):
        tree = union_tree_of(range(1024))

        def depth(node) -> int:
            if isinstance(node, Uni):
                return 1 + max(depth(node.left), depth(node.right))
            return 0

        assert depth(tree) <= 11

    def test_deep_tree_iteration_does_not_recurse(self):
        # A left-deep spine of 10k uni nodes must iterate fine.
        tree = EmpUnion()
        for i in range(10_000):
            tree = Uni(tree, Sng(i))
        assert len(list(tree)) == 10_000

    def test_partitioned_construction(self):
        tree = union_tree_of_partitions([[3, 5], [7], []])
        assert bag_of_union_tree(tree) == Counter({3: 1, 5: 1, 7: 1})

    def test_partitioned_empty(self):
        assert isinstance(union_tree_of_partitions([]), EmpUnion)


class TestEquivalence:
    def test_union_trees_equal_up_to_laws(self):
        # (a uni b) uni c  ==  a uni (b uni c)  ==  c uni (b uni a)
        a, b, c = Sng(1), Sng(2), Sng(3)
        t1 = Uni(Uni(a, b), c)
        t2 = Uni(a, Uni(b, c))
        t3 = Uni(c, Uni(b, a))
        assert trees_equivalent(t1, t2)
        assert trees_equivalent(t2, t3)

    def test_unit_law(self):
        a = Sng(1)
        assert trees_equivalent(Uni(a, EmpUnion()), a)
        assert trees_equivalent(Uni(EmpUnion(), a), a)

    def test_non_equivalent_trees(self):
        assert not trees_equivalent(Sng(1), Sng(2))
        assert not trees_equivalent(
            union_tree_of([1, 1]), union_tree_of([1])
        )

    def test_cross_representation_equivalence(self):
        assert trees_equivalent(
            ins_tree_of([5, 3, 3]), union_tree_of([3, 5, 3])
        )

    def test_rejects_non_trees(self):
        with pytest.raises(TypeError):
            trees_equivalent([1, 2], Sng(1))


class TestConversions:
    def test_ins_to_union_round_trip(self):
        tree = ins_tree_of([1, 2, 2, 3])
        assert bag_of_union_tree(union_of_ins(tree)) == bag_of_ins_tree(
            tree
        )

    def test_union_to_ins_round_trip(self):
        tree = union_tree_of([9, 9, 1])
        assert bag_of_ins_tree(ins_of_union(tree)) == bag_of_union_tree(
            tree
        )


@given(st.lists(st.integers(), max_size=40))
def test_union_tree_quotient_is_multiset(xs):
    assert bag_of_union_tree(union_tree_of(xs)) == Counter(xs)


@given(st.lists(st.integers(), max_size=40))
def test_ins_tree_quotient_is_multiset(xs):
    assert bag_of_ins_tree(ins_tree_of(xs)) == Counter(xs)


@given(
    st.lists(st.integers(), max_size=30),
    st.randoms(use_true_random=False),
)
def test_permutations_yield_equivalent_trees(xs, rng):
    shuffled = list(xs)
    rng.shuffle(shuffled)
    assert trees_equivalent(union_tree_of(xs), union_tree_of(shuffled))


@given(st.lists(st.lists(st.integers(), max_size=10), max_size=6))
def test_partitioning_never_changes_the_value(partitions):
    flat = [x for p in partitions for x in p]
    assert trees_equivalent(
        union_tree_of_partitions(partitions), union_tree_of(flat)
    )

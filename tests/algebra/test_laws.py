"""Tests for the fold well-definedness law checks (Section 2.2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.fold import (
    FoldAlgebra,
    count_algebra,
    max_algebra,
    min_algebra,
    sum_algebra,
)
from repro.algebra.laws import (
    check_associative,
    check_commutative,
    check_fold_well_defined,
    check_unit,
)
from repro.errors import FoldConditionError

ADD = lambda a, b: a + b  # noqa: E731
SUB = lambda a, b: a - b  # noqa: E731


class TestIndividualLaws:
    def test_addition_satisfies_all(self):
        samples = [0, 1, -3, 7]
        assert check_unit(ADD, 0, samples)
        assert check_associative(ADD, samples)
        assert check_commutative(ADD, samples)

    def test_subtraction_fails_associativity(self):
        samples = [1, 2, 3]
        assert not check_associative(SUB, samples)

    def test_subtraction_fails_commutativity(self):
        assert not check_commutative(SUB, [1, 2])

    def test_wrong_unit_detected(self):
        assert not check_unit(ADD, 1, [2, 3])

    def test_custom_equality(self):
        mul = lambda a, b: a * b  # noqa: E731
        samples = [0.1, 0.2, 0.7]
        assert check_associative(
            mul,
            samples,
            equal=lambda a, b: abs(a - b) < 1e-12,
        )


class TestWellDefinedness:
    @pytest.mark.parametrize(
        "algebra",
        [sum_algebra(), count_algebra(), min_algebra(), max_algebra()],
        ids=["sum", "count", "min", "max"],
    )
    def test_catalogue_algebras_are_well_defined(self, algebra):
        assert check_fold_well_defined(algebra, [1, 5, -2, 5])

    def test_list_append_fails_commutativity(self):
        append = FoldAlgebra(
            zero=tuple,
            singleton=lambda x: (x,),
            union=lambda a, b: a + b,
            name="append",
        )
        assert not check_fold_well_defined(append, [1, 2])

    def test_raise_on_failure_names_the_laws(self):
        bad = FoldAlgebra(
            zero=lambda: 0,
            singleton=lambda x: x,
            union=lambda a, b: a - b,
            name="sub",
        )
        with pytest.raises(FoldConditionError, match="sub"):
            check_fold_well_defined(bad, [1, 2], raise_on_failure=True)

    def test_empty_samples_trivially_pass(self):
        assert check_fold_well_defined(sum_algebra(), [])


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=5))
def test_sum_always_well_defined(samples):
    assert check_fold_well_defined(sum_algebra(), samples)


@given(
    st.lists(
        st.tuples(st.integers(), st.integers()), min_size=2, max_size=4
    )
)
def test_first_wins_union_violates_commutativity(samples):
    # "Keep the left value" is associative but not commutative; the
    # checker must flag it whenever two distinct partials exist.
    first = FoldAlgebra(
        zero=lambda: None,
        singleton=lambda x: x,
        union=lambda a, b: a if a is not None else b,
        name="first",
    )
    distinct = len({first.singleton(s) for s in samples}) > 1
    if distinct:
        assert not check_fold_well_defined(first, samples)

"""Tests for structural recursion on bags (paper Section 2.2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.adt import Uni, ins_tree_of, union_tree_of
from repro.algebra.fold import (
    FoldAlgebra,
    bag_algebra,
    banana_split,
    count_algebra,
    exists_algebra,
    fold_ins_tree,
    fold_union_tree,
    forall_algebra,
    max_algebra,
    min_algebra,
    product_algebra,
    sum_algebra,
)


class TestFoldAlgebra:
    def test_sum_by_iteration(self):
        assert sum_algebra()([3, 5, 7]) == 15

    def test_sum_empty(self):
        assert sum_algebra()([]) == 0

    def test_mutable_zero_is_not_shared(self):
        collect = FoldAlgebra(
            zero=list,
            singleton=lambda x: [x],
            union=lambda a, b: a + b,
            name="collect",
        )
        first = collect([1])
        second = collect([2])
        assert first == [1] and second == [2]

    def test_merge_combines_partials(self):
        algebra = sum_algebra()
        partials = [algebra([1, 2]), algebra([3]), algebra([])]
        assert algebra.merge(partials) == 6

    def test_key_projection(self):
        assert sum_algebra(key=lambda p: p[1])([("a", 1), ("b", 2)]) == 3


class TestFoldUnionTree:
    def test_substitution_semantics(self):
        # The paper's worked example: sum of {{3, 5, 7}} via (0, id, +).
        tree = union_tree_of([3, 5, 7])
        assert fold_union_tree(sum_algebra(), tree) == 15

    def test_empty_tree_gives_zero(self):
        assert fold_union_tree(sum_algebra(), union_tree_of([])) == 0

    def test_singleton(self):
        assert fold_union_tree(count_algebra(), union_tree_of([9])) == 1

    def test_deep_spine_no_recursion_error(self):
        from repro.algebra.adt import EmpUnion, Sng

        tree = EmpUnion()
        for i in range(20_000):
            tree = Uni(tree, Sng(1))
        assert fold_union_tree(count_algebra(), tree) == 20_000

    def test_distributed_evaluation_matches_local(self):
        # Fold pushed below the partition-level uni nodes (the paper's
        # "ship the partial sums zi instead of the partial bags" view).
        from repro.algebra.adt import union_tree_of_partitions

        partitions = [[3, 5], [7], [], [11, 13]]
        tree = union_tree_of_partitions(partitions)
        algebra = sum_algebra()
        local = fold_union_tree(algebra, tree)
        shipped = algebra.merge(algebra(p) for p in partitions)
        assert local == shipped == 39


class TestFoldInsTree:
    def test_foldr_semantics(self):
        tree = ins_tree_of([1, 2, 3])
        assert fold_ins_tree(0, lambda x, acc: x + acc, tree) == 6

    def test_empty(self):
        assert fold_ins_tree(42, lambda x, acc: acc, ins_tree_of([])) == 42

    def test_order_sensitive_step_sees_insertion_order(self):
        # Insert representation folds need no commutativity — build a
        # list to observe the order.
        tree = ins_tree_of(["a", "b", "c"])
        out = fold_ins_tree(
            "", lambda x, acc: x + acc, tree
        )
        assert out == "abc"


class TestCatalogue:
    def test_count(self):
        assert count_algebra()([5, 5, 5]) == 3

    def test_min_max(self):
        assert min_algebra()([4, 2, 9]) == 2
        assert max_algebra()([4, 2, 9]) == 9

    def test_min_empty_is_none(self):
        assert min_algebra()([]) is None
        assert max_algebra()([]) is None

    def test_min_by_key(self):
        assert min_algebra(key=lambda x: -x)([4, 2, 9]) == -9

    def test_exists(self):
        assert exists_algebra(lambda x: x > 8)([4, 2, 9]) is True
        assert exists_algebra(lambda x: x > 80)([4, 2, 9]) is False
        assert exists_algebra(lambda x: True)([]) is False

    def test_forall(self):
        assert forall_algebra(lambda x: x > 1)([4, 2, 9]) is True
        assert forall_algebra(lambda x: x > 2)([4, 2, 9]) is False
        assert forall_algebra(lambda x: False)([]) is True

    def test_bag_algebra_rebuilds(self):
        assert sorted(bag_algebra()([3, 1, 2])) == [1, 2, 3]


class TestBananaSplit:
    def test_tuple_of_folds_equals_fold_of_tuples(self):
        xs = [3, 5, 7, 7]
        separate = (
            sum_algebra()(xs),
            count_algebra()(xs),
            min_algebra()(xs),
        )
        fused = banana_split(
            [sum_algebra(), count_algebra(), min_algebra()]
        )(xs)
        assert fused == separate == (22, 4, 3)

    def test_product_requires_an_algebra(self):
        with pytest.raises(ValueError):
            product_algebra([])

    def test_product_merge(self):
        algebra = product_algebra([sum_algebra(), count_algebra()])
        partials = [algebra([1, 2]), algebra([3])]
        assert algebra.merge(partials) == (6, 3)

    def test_product_name(self):
        algebra = product_algebra([sum_algebra(), count_algebra()])
        assert algebra.name == "sumxcount"


@given(st.lists(st.integers(), max_size=50))
def test_fold_union_tree_matches_direct_application(xs):
    tree = union_tree_of(xs)
    assert fold_union_tree(sum_algebra(), tree) == sum(xs)
    assert fold_union_tree(count_algebra(), tree) == len(xs)


@given(
    st.lists(st.integers(), max_size=30),
    st.integers(min_value=1, max_value=5),
)
def test_partitioned_fold_equals_global_fold(xs, num_partitions):
    algebra = sum_algebra()
    partitions = [
        xs[i::num_partitions] for i in range(num_partitions)
    ]
    assert algebra.merge(algebra(p) for p in partitions) == algebra(xs)


@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_banana_split_law(xs):
    fused = banana_split([sum_algebra(), max_algebra()])(xs)
    assert fused == (sum(xs), max(xs))

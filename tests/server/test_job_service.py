"""The always-on job service: admission, fairness, quotas, protocol.

The headline test floods the service with eight simultaneous jobs from
two tenants sharing one process-wide worker pool and checks the
admission loop's contract: per-tenant quotas are never exceeded, every
job finishes with per-job cache metrics, and fair round-robin keeps
one tenant from starving the other.
"""

from __future__ import annotations

import time

import pytest

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.plancache import PlanCache
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import EmmaError
from repro.server import JobService, ServiceClient
from repro.workloads.graphs import stage_follower_graph
from repro.workloads.tpch.datagen import stage_tpch
from repro.workloads.tpch.q1 import tpch_q1
from repro.workloads.pagerank import pagerank


@pytest.fixture
def world():
    dfs = SimulatedDFS()
    _, lineitem = stage_tpch(dfs, sf=0.01, seed=7)
    graph = stage_follower_graph(dfs, num_vertices=40, seed=3)
    return {"dfs": dfs, "lineitem": lineitem, "graph": graph}


def engine_factory(dfs):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4), dfs=dfs
    )


@pytest.fixture
def service(world, tmp_path):
    svc = JobService(
        engine_factory,
        dfs=world["dfs"],
        cache=PlanCache(cache_dir=str(tmp_path)),
        max_concurrent=4,
        default_quota=2,
    )
    yield svc
    svc.shutdown()


def q1_params(world):
    return {
        "lineitem_path": world["lineitem"],
        "ship_date_max": "1996-12-01",
    }


def pr_params(world, iterations=3):
    return {
        "graph_path": world["graph"],
        "num_pages": 40,
        "max_iterations": iterations,
    }


class TestCacheFirstExecution:
    def test_cold_miss_then_warm_result_hit(self, service, world):
        cold = service.submit(tpch_q1, q1_params(world), tenant="a")
        r1 = cold.result(timeout=60)
        assert cold.cache == {"result": "miss", "plan": "miss"}
        assert not cold.served_from_cache
        assert cold.metrics.plan_cache_misses == 1
        warm = service.submit(tpch_q1, q1_params(world), tenant="b")
        r2 = warm.result(timeout=60)
        assert warm.cache["result"] == "hit"
        assert warm.served_from_cache
        assert warm.metrics.result_cache_hits == 1
        assert repr(r1) == repr(r2)

    def test_input_change_misses_result_cache(self, service, world):
        first = service.submit(pagerank, pr_params(world))
        first.result(timeout=60)
        other = service.submit(
            pagerank, pr_params(world, iterations=4)
        )
        other.result(timeout=60)
        assert other.cache["result"] == "miss"
        # ...but the plan (same program, same config) was warm.
        assert other.cache["plan"] == "hit"

    def test_errors_delivered_to_caller(self, service, world):
        bad = service.submit(
            tpch_q1, {"wrong_param": 1}, tenant="a"
        )
        with pytest.raises(EmmaError):
            bad.result(timeout=60)
        assert bad.done()


class TestConcurrentAdmission:
    def test_eight_jobs_two_tenants(self, service, world):
        # Eight simultaneous submissions across two tenants, one
        # shared worker pool under the service.
        handles = []
        for _ in range(4):
            handles.append(
                service.submit(
                    pagerank, pr_params(world), tenant="alpha"
                )
            )
            handles.append(
                service.submit(
                    tpch_q1, q1_params(world), tenant="beta"
                )
            )
        assert len(handles) == 8
        results = [h.result(timeout=120) for h in handles]
        assert all(r is not None for r in results)
        # Identical submissions are repr-identical regardless of
        # whether they executed or were served from cache.
        assert len({repr(r) for r in results[::2]}) == 1
        assert len({repr(r) for r in results[1::2]}) == 1
        # Every job carries its own cache verdict and metrics.
        for handle in handles:
            assert "result" in handle.cache
            assert handle.admission_latency is not None
        # The first admission wave (max_concurrent=4, two per tenant)
        # runs cold concurrently; everything admitted after a
        # completion finds the result cache warm.
        assert sum(h.served_from_cache for h in handles) >= 4

    def test_quota_never_exceeded(self, service, world):
        handles = [
            service.submit(
                pagerank,
                pr_params(world, iterations=2 + (i % 3)),
                tenant="alpha" if i % 2 else "beta",
            )
            for i in range(10)
        ]
        for handle in handles:
            handle.result(timeout=120)
        running: dict[str, int] = {}
        peak: dict[str, int] = {}
        for event, _job, tenant, _t in service.events:
            if event == "admitted":
                running[tenant] = running.get(tenant, 0) + 1
                peak[tenant] = max(
                    peak.get(tenant, 0), running[tenant]
                )
            elif event == "finished":
                running[tenant] -= 1
        assert peak, "no admissions recorded"
        for tenant, high in peak.items():
            assert high <= 2, f"{tenant} exceeded its quota: {high}"

    def test_round_robin_interleaves_tenants(self, service, world):
        # One tenant floods first; fairness means the other tenant's
        # first job is admitted before the flooder's queue drains.
        flood = [
            service.submit(
                pagerank,
                pr_params(world, iterations=2 + i),
                tenant="flood",
            )
            for i in range(5)
        ]
        lone = service.submit(
            tpch_q1, q1_params(world), tenant="lone"
        )
        for handle in flood + [lone]:
            handle.result(timeout=120)
        admissions = [
            tenant
            for event, _job, tenant, _t in service.events
            if event == "admitted"
        ]
        lone_pos = admissions.index("lone")
        assert lone_pos < len(admissions) - 1, (
            "the lone tenant must not be starved to the very end: "
            f"{admissions}"
        )

    def test_concurrent_jobs_share_one_process_pool(
        self, world, tmp_path
    ):
        # Engines in processes mode all schedule onto the single
        # module-global spawn pool — concurrent jobs contend for the
        # same workers instead of forking a pool per job.
        from repro.engines import scheduler

        def processes_engine(dfs):
            return SparkLikeEngine(
                cluster=ClusterConfig(num_workers=4),
                dfs=dfs,
                execution_mode="processes",
                max_parallel_tasks=2,
            )

        svc = JobService(
            processes_engine,
            dfs=world["dfs"],
            cache=PlanCache(cache_dir=str(tmp_path)),
            max_concurrent=4,
        )
        try:
            handles = [
                svc.submit(
                    pagerank,
                    pr_params(world, iterations=2 + i),
                    tenant="alpha" if i % 2 else "beta",
                )
                for i in range(4)
            ]
            for handle in handles:
                assert handle.result(timeout=120) is not None
            pool_after = scheduler._POOL
            assert pool_after is not None, "no process pool was used"
            # Re-running more jobs must reuse, not respawn, the pool.
            svc.submit(pagerank, pr_params(world)).result(timeout=120)
            assert scheduler._POOL is pool_after
        finally:
            svc.shutdown()

    def test_stats_summary(self, service, world):
        for _ in range(3):
            service.submit(tpch_q1, q1_params(world)).result(
                timeout=60
            )
        stats = service.stats()
        assert stats["jobs_submitted"] == 3
        assert stats["jobs_finished"] == 3
        assert stats["jobs_served_from_cache"] == 2
        assert stats["result_cache_hit_rate"] == pytest.approx(2 / 3)
        assert stats["admission_latency_p50"] >= 0
        assert (
            stats["admission_latency_p99"]
            >= stats["admission_latency_p50"]
        )


class TestBatchBackfill:
    def test_partial_hit_backfills_only_misses(self, service, world):
        warm = service.submit(pagerank, pr_params(world))
        warm.result(timeout=60)
        fresh_graph = stage_follower_graph(
            world["dfs"], num_vertices=25, seed=9
        )
        batch = service.submit_batch(
            [
                (pagerank, pr_params(world)),
                (
                    pagerank,
                    {
                        "graph_path": fresh_graph,
                        "num_pages": 25,
                        "max_iterations": 3,
                    },
                ),
            ]
        )
        assert [h.result(timeout=60) is not None for h in batch] == [
            True,
            True,
        ]
        deadline = time.time() + 5
        while (
            service.metrics.backfill_partitions == 0
            and time.time() < deadline
        ):
            time.sleep(0.05)
        assert batch[0].served_from_cache
        assert not batch[1].served_from_cache
        # Exactly the missing member counts as backfilled.
        assert service.metrics.backfill_partitions == 1
        assert batch[1].metrics.backfill_partitions == 1

    def test_full_hit_batch_has_no_backfill(self, service, world):
        service.submit(pagerank, pr_params(world)).result(timeout=60)
        batch = service.submit_batch(
            [(pagerank, pr_params(world))] * 2
        )
        for handle in batch:
            handle.result(timeout=60)
        time.sleep(0.2)
        assert service.metrics.backfill_partitions == 0


class TestTcpEndpoint:
    def test_submit_wait_stats_over_socket(self, service, world):
        service.register(tpch_q1)
        port = service.serve()
        with ServiceClient("127.0.0.1", port) as client:
            assert client.request({"op": "ping"})["pong"] is True
            submitted = client.request(
                {
                    "op": "submit",
                    "algorithm": "tpch_q1",
                    "params": q1_params(world),
                    "tenant": "remote",
                }
            )
            assert submitted["ok"], submitted
            done = client.request(
                {"op": "wait", "job_id": submitted["job_id"]}
            )
            assert done["ok"], done
            assert done["result"].startswith("DataBag(")
            assert done["cache"]["result"] in ("hit", "miss")
            stats = client.request({"op": "stats"})
            assert stats["ok"] and stats["jobs_submitted"] >= 1

    def test_unknown_requests_rejected(self, service):
        port = service.serve()
        with ServiceClient("127.0.0.1", port) as client:
            assert not client.request({"op": "nope"})["ok"]
            assert not client.request(
                {"op": "submit", "algorithm": "unregistered"}
            )["ok"]

    def test_shutdown_refuses_new_jobs(self, world, tmp_path):
        svc = JobService(
            engine_factory,
            dfs=world["dfs"],
            cache=PlanCache(cache_dir=str(tmp_path)),
        )
        svc.shutdown()
        with pytest.raises(EmmaError):
            svc.submit(tpch_q1, q1_params(world))

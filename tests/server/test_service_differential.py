"""Differential suite for the plan/result cache: warm == cold, always.

The cache's contract is the spill layer's, one level up: it changes
*when* compilation and execution happen, never *what* they produce.
Two differentials prove it:

* **Plan-hit**: a compiled program pickled to disk and reloaded by a
  fresh cache instance must *execute* bit-identically to the freshly
  compiled original — same ``repr``, same ``simulated_seconds``, same
  fault/recovery schedule — across serial, threaded, and process-pool
  modes, under aggressive fault injection, and inside a 256 KiB
  driver memory budget.
* **Result-hit**: a warm service answer (no execution at all) must be
  ``repr``-identical to the cold executed value under the same matrix.

Only wall clock and the ``*_cache_*`` counters may move.
"""

from __future__ import annotations

import pytest

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan
from repro.engines.plancache import PlanCache
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.server import JobService
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1

MODES = ("serial", "threads", "processes")

#: The acceptance budget: tight enough to evict, roomy enough to run.
BUDGET = 256 * 1024

#: Metrics fields allowed to differ between cold and warm runs: wall
#: clock, host-parallel/columnar/spill accounting, and the cache's own
#: counters.  Everything else — simulated time, shuffle/broadcast/DFS
#: bytes, fault and recovery schedules — must match exactly.
_VARIANT_DEPENDENT = {
    "wall_clock_seconds",
    "parallel_tasks",
    "parallel_stages",
    "ipc_bytes_shipped",
    "ipc_bytes_returned",
    "kernels_rehydrated",
    "speculative_launches",
    "speculative_wins",
    "serial_fallbacks",
    "columnar_batches_built",
    "columnar_kernels",
    "columnar_fallbacks",
    "columnar_fallbacks_udf",
    "columnar_fallbacks_schema",
    "columnar_fallbacks_input",
    "columnar_blocks_shipped",
    "spill_bytes_written",
    "spill_bytes_read",
    "partitions_spilled",
    "partitions_reloaded",
    "external_merge_passes",
    "budget_evictions",
    "plan_cache_hits",
    "plan_cache_misses",
    "result_cache_hits",
    "result_cache_misses",
    "compile_seconds_saved",
    "backfill_partitions",
    "cache_entries_evicted",
}


@pytest.fixture(scope="module")
def world():
    dfs = SimulatedDFS()
    graph_path = graphs.stage_follower_graph(dfs, num_vertices=60)
    _, lineitem_path = stage_tpch(dfs, sf=0.02)
    return {"dfs": dfs, "graph": graph_path, "lineitem": lineitem_path}


def _engine(world, mode, fault_plan=None):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4),
        dfs=world["dfs"],
        execution_mode=mode,
        max_parallel_tasks=2,
        fault_plan=fault_plan,
        checkpoint_interval=2 if fault_plan else 0,
    )


def _config(mode, budget=0):
    return EmmaConfig(
        execution_mode=mode,
        max_parallel_tasks=2,
        memory_budget=budget,
    )


def _invariants(engine) -> dict:
    return {
        name: value
        for name, value in vars(engine.metrics).items()
        if name not in _VARIANT_DEPENDENT
    }


def _reprs(result) -> list[str]:
    records = result.fetch() if hasattr(result, "fetch") else [result]
    return [repr(r) for r in records]


def _run_cold_vs_plan_hit(
    world, tmp_path, algo, params, mode, fault_plan=None, budget=0
):
    """Compile fresh, then execute the disk-reloaded plan; compare."""
    cache_dir = str(tmp_path)
    cold_cache = PlanCache(cache_dir=cache_dir)
    cold_engine = _engine(world, mode, fault_plan=fault_plan)
    cold_engine.attach_plan_cache(cold_cache)
    cold = algo.run(
        cold_engine, config=_config(mode, budget), **params
    )
    assert cold_engine.metrics.plan_cache_misses == 1
    # A fresh PlanCache over the same directory = a fresh driver: the
    # plan comes back through pickle, never through compile_program.
    warm_cache = PlanCache(cache_dir=cache_dir)
    warm_engine = _engine(world, mode, fault_plan=fault_plan)
    warm_engine.attach_plan_cache(warm_cache)
    warm = algo.run(
        warm_engine, config=_config(mode, budget), **params
    )
    assert warm_engine.metrics.plan_cache_hits == 1
    assert warm_cache.stats.disk_loads == 1
    assert _reprs(warm) == _reprs(cold), (
        f"plan-cache hit diverged in mode={mode} "
        f"faults={fault_plan is not None} budget={budget}"
    )
    assert _invariants(warm_engine) == _invariants(cold_engine), (
        f"invariant metrics diverged in mode={mode}"
    )
    return cold


class TestPlanHitExecutesIdentically:
    @pytest.mark.parametrize("mode", MODES)
    def test_pagerank_all_modes(self, world, tmp_path, mode):
        n = len(world["dfs"].get(world["graph"]).records)
        _run_cold_vs_plan_hit(
            world,
            tmp_path,
            pagerank,
            {
                "graph_path": world["graph"],
                "num_pages": n,
                "max_iterations": 4,
            },
            mode,
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_tpch_q1_all_modes(self, world, tmp_path, mode):
        _run_cold_vs_plan_hit(
            world,
            tmp_path,
            tpch_q1,
            {
                "lineitem_path": world["lineitem"],
                "ship_date_max": "1996-12-01",
            },
            mode,
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_under_aggressive_faults(self, world, tmp_path, mode):
        # A cached plan must replay the exact same injected-fault and
        # recovery schedule as the freshly compiled one.
        n = len(world["dfs"].get(world["graph"]).records)
        _run_cold_vs_plan_hit(
            world,
            tmp_path,
            pagerank,
            {
                "graph_path": world["graph"],
                "num_pages": n,
                "max_iterations": 4,
            },
            mode,
            fault_plan=FaultPlan.aggressive(),
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_under_memory_budget(self, world, tmp_path, mode):
        n = len(world["dfs"].get(world["graph"]).records)
        _run_cold_vs_plan_hit(
            world,
            tmp_path,
            pagerank,
            {
                "graph_path": world["graph"],
                "num_pages": n,
                "max_iterations": 4,
            },
            mode,
            budget=BUDGET,
        )


class TestResultHitServesIdentically:
    @pytest.mark.parametrize("mode", MODES)
    def test_warm_service_answer_matches_cold(
        self, world, tmp_path, mode
    ):
        svc = JobService(
            lambda dfs: _engine({"dfs": dfs}, mode),
            dfs=world["dfs"],
            cache=PlanCache(cache_dir=str(tmp_path)),
        )
        try:
            params = {
                "lineitem_path": world["lineitem"],
                "ship_date_max": "1996-12-01",
            }
            cold = svc.submit(
                tpch_q1, params, config=_config(mode)
            ).result(timeout=120)
            warm_handle = svc.submit(
                tpch_q1, params, config=_config(mode)
            )
            warm = warm_handle.result(timeout=120)
            assert warm_handle.served_from_cache
            assert _reprs(warm) == _reprs(cold)
        finally:
            svc.shutdown()

    def test_warm_answer_crosses_modes(self, world, tmp_path):
        # A result computed in serial mode serves a processes-mode
        # submission: runtime knobs are outside the fingerprint.
        svc = JobService(
            lambda dfs: _engine({"dfs": dfs}, "serial"),
            dfs=world["dfs"],
            cache=PlanCache(cache_dir=str(tmp_path)),
        )
        try:
            params = {
                "lineitem_path": world["lineitem"],
                "ship_date_max": "1996-12-01",
            }
            cold = svc.submit(
                tpch_q1, params, config=_config("serial")
            ).result(timeout=120)
            warm_handle = svc.submit(
                tpch_q1, params, config=_config("processes")
            )
            warm = warm_handle.result(timeout=120)
            assert warm_handle.served_from_cache
            assert _reprs(warm) == _reprs(cold)
        finally:
            svc.shutdown()

    def test_warm_under_faults_and_budget(self, world, tmp_path):
        # Even with chaos injection and a tight budget configured,
        # the warm path serves the same value the cold chaos run
        # produced (fault schedules are simulation-deterministic).
        plan = FaultPlan.aggressive()
        svc = JobService(
            lambda dfs: _engine(
                {"dfs": dfs}, "threads", fault_plan=plan
            ),
            dfs=world["dfs"],
            cache=PlanCache(cache_dir=str(tmp_path)),
        )
        try:
            n = len(world["dfs"].get(world["graph"]).records)
            params = {
                "graph_path": world["graph"],
                "num_pages": n,
                "max_iterations": 4,
            }
            config = _config("threads", budget=BUDGET)
            cold = svc.submit(pagerank, params, config=config).result(
                timeout=120
            )
            warm_handle = svc.submit(pagerank, params, config=config)
            warm = warm_handle.result(timeout=120)
            assert warm_handle.served_from_cache
            assert _reprs(warm) == _reprs(cold)
        finally:
            svc.shutdown()

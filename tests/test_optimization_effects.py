"""Metric-level effects of each optimization, at unit-test speed.

The benchmark suite reproduces the paper's figures at full scale; these
tests pin the *mechanisms* on a miniature workflow by asserting engine
metrics — broadcast bytes vanish under unnesting, DFS reads collapse
under caching, shuffles vanish under partition pulling, shuffled bytes
shrink under fold-group fusion — so a regression in any rewrite or in
the cost accounting fails fast.
"""

from dataclasses import dataclass

import pytest

from repro.api import (
    DataBag,
    EmmaConfig,
    SparkLikeEngine,
    parallelize,
)
from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS


@dataclass(frozen=True)
class Event:
    ip: int
    weight: int


@dataclass(frozen=True)
class Listed:
    ip: int


@parallelize
def flag_loop(events_path, listed_path, rounds):
    events = read(events_path, None)  # noqa: F821 - intrinsic
    listed = read(listed_path, None)  # noqa: F821 - intrinsic
    total = 0
    i = 0
    while i < rounds:
        flagged = (
            e for e in events if listed.exists(lambda b: b.ip == e.ip)
        )
        total = total + flagged.count()
        i = i + 1
    return total


@parallelize
def grouped_weights(events_path):
    events = read(events_path, None)  # noqa: F821 - intrinsic
    return (
        (g.key, g.values.map(lambda e: e.weight).sum())
        for g in events.group_by(lambda e: e.ip)
    )


@pytest.fixture(scope="module")
def dfs():
    store = SimulatedDFS()
    store.put("events", [Event(i % 40, i) for i in range(400)])
    store.put("listed", [Listed(i) for i in range(0, 40, 4)])
    return store


def _engine(dfs):
    engine = SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4), dfs=dfs
    )
    engine.broadcast_join_threshold = 1  # force repartition joins
    return engine


def _run_flag_loop(dfs, config):
    engine = _engine(dfs)
    result = flag_loop.run(
        engine,
        config=config,
        events_path="events",
        listed_path="listed",
        rounds=3,
    )
    return result, engine.metrics


EXPECTED = 3 * sum(
    1 for i in range(400) if (i % 40) % 4 == 0
)


class TestUnnestingMechanism:
    def test_baseline_broadcasts_the_lookup(self, dfs):
        result, metrics = _run_flag_loop(dfs, EmmaConfig.none())
        assert result == EXPECTED
        assert metrics.broadcast_bytes > 0
        assert metrics.repartition_joins == 0

    def test_unnesting_replaces_broadcast_with_semi_join(self, dfs):
        config = EmmaConfig(
            unnesting=True,
            fold_group_fusion=False,
            caching=False,
            partition_pulling=False,
        )
        result, metrics = _run_flag_loop(dfs, config)
        assert result == EXPECTED
        assert metrics.broadcast_bytes == 0
        assert metrics.repartition_joins == 3  # one per iteration


class TestCachingMechanism:
    def test_lazy_baseline_rereads_every_iteration(self, dfs):
        _, metrics = _run_flag_loop(
            dfs,
            EmmaConfig(
                unnesting=True,
                fold_group_fusion=False,
                caching=False,
                partition_pulling=False,
            ),
        )
        events_bytes = dfs.get("events").nbytes
        assert metrics.dfs_read_bytes >= 3 * events_bytes

    def test_caching_reads_each_input_once(self, dfs):
        _, metrics = _run_flag_loop(
            dfs,
            EmmaConfig(
                unnesting=True,
                fold_group_fusion=False,
                caching=True,
                partition_pulling=False,
            ),
        )
        events_bytes = dfs.get("events").nbytes
        listed_bytes = dfs.get("listed").nbytes
        assert metrics.dfs_read_bytes == events_bytes + listed_bytes


class TestPartitionPullingMechanism:
    def test_partitioned_caches_eliminate_loop_shuffles(self, dfs):
        # Physical planning off: loop-invariant hoisting would remove
        # the per-iteration shuffles in *both* configs, hiding the
        # partition-pulling effect this test isolates.
        _, cached = _run_flag_loop(
            dfs,
            EmmaConfig(
                unnesting=True,
                fold_group_fusion=False,
                caching=True,
                partition_pulling=False,
                physical_planning=False,
            ),
        )
        _, pulled = _run_flag_loop(
            dfs,
            EmmaConfig(
                unnesting=True,
                fold_group_fusion=False,
                caching=True,
                partition_pulling=True,
                physical_planning=False,
            ),
        )
        # Without pulling: both join sides shuffle every iteration.
        # With pulling: the one-time cache shuffle is all there is, and
        # per-iteration shuffles disappear entirely.
        assert pulled.shuffle_bytes < cached.shuffle_bytes
        assert pulled.records_shuffled < cached.records_shuffled

    def test_results_identical_across_all_configs(self, dfs):
        results = {
            label: _run_flag_loop(dfs, config)[0]
            for label, config in {
                "none": EmmaConfig.none(),
                "all": EmmaConfig.all(),
            }.items()
        }
        assert results["none"] == results["all"] == EXPECTED


class TestFusionMechanism:
    def test_fusion_shrinks_shuffled_bytes(self, dfs):
        fused_engine = _engine(dfs)
        fused = grouped_weights.run(
            fused_engine, events_path="events"
        )
        unfused_engine = _engine(dfs)
        unfused = grouped_weights.run(
            unfused_engine,
            config=EmmaConfig(fold_group_fusion=False),
            events_path="events",
        )
        assert fused == unfused
        assert (
            fused_engine.metrics.shuffle_bytes
            < unfused_engine.metrics.shuffle_bytes / 2
        )


class TestDeterminism:
    def test_identical_runs_produce_identical_metrics(self, dfs):
        _, a = _run_flag_loop(dfs, EmmaConfig.all())
        _, b = _run_flag_loop(dfs, EmmaConfig.all())
        assert a.simulated_seconds == b.simulated_seconds
        assert a.shuffle_bytes == b.shuffle_bytes
        assert a.dfs_read_bytes == b.dfs_read_bytes
        assert a.jobs_submitted == b.jobs_submitted

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
from dataclasses import fields, is_dataclass

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig
from repro.engines.costmodel import CostModel
from repro.engines.dfs import SimulatedDFS
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.local import LocalEngine
from repro.engines.sparklike import SparkLikeEngine

# Property tests must be deterministic across runs and machines: no
# deadline flakiness from slow simulated engines, no example-database
# randomness between CI runs.
hypothesis_settings.register_profile(
    "repro", deadline=None, derandomize=True
)
hypothesis_settings.load_profile("repro")


@pytest.fixture
def dfs() -> SimulatedDFS:
    return SimulatedDFS()


@pytest.fixture
def spark(dfs: SimulatedDFS) -> SparkLikeEngine:
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=4), dfs=dfs
    )


@pytest.fixture
def flink(dfs: SimulatedDFS) -> FlinkLikeEngine:
    return FlinkLikeEngine(
        cluster=ClusterConfig(num_workers=4), dfs=dfs
    )


@pytest.fixture
def local(dfs: SimulatedDFS) -> LocalEngine:
    engine = LocalEngine()
    engine.dfs = dfs
    return engine


@pytest.fixture
def all_engines(local, spark, flink):
    return [local, spark, flink]


def approx_value_equal(a, b, rel: float = 1e-9, abs_: float = 1e-9) -> bool:
    """Structural equality with float tolerance (fold order varies)."""
    from repro.workloads.linalg import Vec

    if isinstance(a, float) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
    if isinstance(b, float) and isinstance(a, (int, float)):
        return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
    if isinstance(a, Vec) and isinstance(b, Vec):
        return approx_value_equal(
            a.components, b.components, rel, abs_
        )
    if is_dataclass(a) and is_dataclass(b) and type(a) is type(b):
        return all(
            approx_value_equal(
                getattr(a, f.name), getattr(b, f.name), rel, abs_
            )
            for f in fields(a)
        )
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            approx_value_equal(x, y, rel, abs_) for x, y in zip(a, b)
        )
    return a == b


def sort_key(record) -> str:
    return repr(record)


def assert_bags_match(result, expected, rel: float = 1e-9) -> None:
    """Order-insensitive comparison with float tolerance.

    ``result``/``expected`` may be DataBags or lists.
    """
    left = result.fetch() if isinstance(result, DataBag) else list(result)
    right = (
        expected.fetch() if isinstance(expected, DataBag) else list(expected)
    )
    assert len(left) == len(right), (
        f"bag sizes differ: {len(left)} vs {len(right)}"
    )
    left_sorted = sorted(left, key=sort_key)
    right_sorted = sorted(right, key=sort_key)
    for a, b in zip(left_sorted, right_sorted):
        assert approx_value_equal(a, b, rel=rel, abs_=1e-6), (
            f"records differ: {a!r} vs {b!r}"
        )

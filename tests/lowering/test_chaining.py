"""Tests for the physical operator-chaining pass."""

from repro.comprehension.exprs import Attr, BinOp, Compare, Const, Ref
from repro.lowering.chaining import (
    ChainStats,
    chain_operators,
    consumer_counts,
)
from repro.lowering.combinators import (
    CBagRef,
    CChain,
    CFilter,
    CFlatMap,
    CFold,
    CMap,
    CUnion,
    ScalarFn,
    explain,
)


def inc() -> ScalarFn:
    return ScalarFn(("x",), BinOp("+", Ref("x"), Const(1)))


def positive() -> ScalarFn:
    return ScalarFn(("x",), Compare(">", Ref("x"), Const(0)))


def map_filter_map(source) -> CMap:
    return CMap(
        fn=inc(),
        input=CFilter(predicate=positive(), input=CMap(fn=inc(), input=source)),
    )


class TestChainDiscovery:
    def test_maximal_run_fuses_into_one_chain(self):
        plan = map_filter_map(CBagRef(name="xs"))
        stats = ChainStats()
        chained = chain_operators(plan, stats)
        assert isinstance(chained, CChain)
        assert [type(op).__name__ for op in chained.ops] == [
            "CMap",
            "CFilter",
            "CMap",
        ]
        assert isinstance(chained.input, CBagRef)
        assert stats.chains == 1
        assert stats.chained_operators == 3

    def test_ops_are_in_dataflow_order(self):
        inner = CMap(fn=inc(), input=CBagRef(name="xs"))
        outer = CFilter(predicate=positive(), input=inner)
        chained = chain_operators(outer)
        assert chained.ops == (inner, outer)

    def test_single_operator_is_not_chained(self):
        plan = CMap(fn=inc(), input=CBagRef(name="xs"))
        stats = ChainStats()
        chained = chain_operators(plan, stats)
        assert chained is plan
        assert stats.chains == 0

    def test_flatmap_participates(self):
        plan = CFlatMap(
            fn=inc(), input=CMap(fn=inc(), input=CBagRef(name="xs"))
        )
        chained = chain_operators(plan)
        assert isinstance(chained, CChain)
        assert len(chained.ops) == 2

    def test_non_chainable_operator_breaks_the_run(self):
        plan = CMap(
            fn=inc(),
            input=CUnion(
                left=CMap(fn=inc(), input=CBagRef(name="xs")),
                right=CBagRef(name="ys"),
            ),
        )
        chained = chain_operators(plan)
        # The union splits the two maps into separate (length-1,
        # therefore unfused) runs.
        assert isinstance(chained, CMap)
        assert isinstance(chained.input, CUnion)

    def test_chain_nested_under_other_operators(self):
        from repro.comprehension.exprs import AlgebraSpec

        plan = CFold(
            spec=AlgebraSpec("count"),
            input=map_filter_map(CBagRef(name="xs")),
        )
        chained = chain_operators(plan)
        assert isinstance(chained, CFold)
        assert isinstance(chained.input, CChain)


class TestAnnotationsAndSharing:
    def test_cached_interior_node_is_not_fused(self):
        cached = CMap(fn=inc(), input=CBagRef(name="xs"), cache=True)
        plan = CMap(fn=inc(), input=CFilter(predicate=positive(), input=cached))
        chained = chain_operators(plan)
        assert isinstance(chained, CChain)
        assert len(chained.ops) == 2  # stops above the cached map
        assert chained.input is cached

    def test_partition_hint_interior_node_is_not_fused(self):
        hinted = CMap(
            fn=inc(), input=CBagRef(name="xs"), partition_hint=inc()
        )
        plan = CFilter(predicate=positive(), input=hinted)
        chained = chain_operators(plan)
        # A two-node run whose interior carries a hint stays unfused.
        assert isinstance(chained, CFilter)
        assert chained.input is hinted

    def test_head_inherits_annotations(self):
        plan = CMap(
            fn=inc(),
            input=CMap(fn=inc(), input=CBagRef(name="xs")),
            cache=True,
            partition_hint=inc(),
        )
        chained = chain_operators(plan)
        assert isinstance(chained, CChain)
        assert chained.cache
        assert chained.partition_hint is not None

    def test_shared_interior_node_is_not_fused(self):
        shared = CMap(fn=inc(), input=CBagRef(name="xs"))
        plan = CUnion(
            left=CFilter(predicate=positive(), input=shared),
            right=CMap(fn=inc(), input=shared),
        )
        chained = chain_operators(plan)
        # Neither branch may absorb the shared map; both runs collapse
        # to single operators, so nothing fuses.
        assert isinstance(chained, CUnion)
        assert isinstance(chained.left, CFilter)
        assert isinstance(chained.right, CMap)

    def test_shared_chain_head_is_flagged_shared(self):
        head = CFilter(
            predicate=positive(),
            input=CMap(fn=inc(), input=CBagRef(name="xs")),
        )
        plan = CUnion(
            left=CMap(fn=inc(), input=head),
            right=CFlatMap(fn=inc(), input=head),
        )
        chained = chain_operators(plan)
        # Each union branch chains with the shared two-op run below it?
        # No: the shared head has two consumers, so each branch stays a
        # lone operator and the head itself becomes one shared chain.
        left, right = chained.left, chained.right
        assert isinstance(left, CMap)
        assert isinstance(right, CFlatMap)
        assert isinstance(left.input, CChain)
        assert left.input is right.input  # diamond preserved
        assert left.input.shared

    def test_diamond_is_rebuilt_once(self):
        shared = CUnion(
            left=CBagRef(name="xs"), right=CBagRef(name="ys")
        )
        plan = CUnion(
            left=CMap(fn=inc(), input=shared),
            right=CFilter(predicate=positive(), input=shared),
        )
        chained = chain_operators(plan)
        assert chained.left.input is chained.right.input

    def test_unchanged_subtree_preserved_by_identity(self):
        leaf = CBagRef(name="xs")
        plan = CUnion(left=leaf, right=CBagRef(name="ys"))
        chained = chain_operators(plan)
        assert chained is plan

    def test_node_id_preserved_through_rebuild(self):
        leaf = CBagRef(name="xs")
        chain = map_filter_map(leaf)
        plan = CUnion(left=chain, right=leaf)
        chained = chain_operators(plan)
        assert chained.node_id == plan.node_id


class TestChainProperties:
    def test_all_filter_chain_preserves_partitioning(self):
        chain = CChain(
            ops=(
                CFilter(predicate=positive(), input=None),
                CFilter(predicate=positive(), input=None),
            ),
            input=CBagRef(name="xs"),
        )
        assert chain.preserves_partitioning()

    def test_chain_with_map_does_not_preserve_partitioning(self):
        chained = chain_operators(map_filter_map(CBagRef(name="xs")))
        assert not chained.preserves_partitioning()

    def test_udfs_concatenated(self):
        chained = chain_operators(map_filter_map(CBagRef(name="xs")))
        assert len(chained.udfs()) == 3

    def test_explain_renders_chain_as_one_stage(self):
        chained = chain_operators(map_filter_map(CBagRef(name="xs")))
        text = explain(chained)
        # One bracketed stage on one line; the source below it.
        first_line = text.splitlines()[0]
        assert first_line.startswith("Chain[")
        assert first_line.count("Map(") == 2
        assert "Filter(" in first_line
        assert "BagRef(xs)" in text

    def test_consumer_counts_by_identity(self):
        shared = CBagRef(name="xs")
        plan = CUnion(left=shared, right=shared)
        counts = consumer_counts(plan)
        assert counts[id(shared)] == 2

"""Tests for combinator nodes and ScalarFn."""

from repro.comprehension.exprs import (
    Attr,
    BinOp,
    Const,
    Ref,
)
from repro.lowering.combinators import (
    AggResult,
    CBagRef,
    CFilter,
    CMap,
    ScalarFn,
    combinator_nodes,
    explain,
)


class TestScalarFn:
    def test_compile_closes_over_env(self):
        fn = ScalarFn(("x",), BinOp("+", Ref("x"), Ref("k")))
        compiled = fn.compile({"k": 10})
        assert compiled(5) == 15

    def test_free_names_exclude_params(self):
        fn = ScalarFn(("x",), BinOp("+", Ref("x"), Ref("k")))
        assert fn.free_names() == frozenset({"k"})

    def test_identity(self):
        fn = ScalarFn.identity()
        assert fn.is_identity()
        assert fn.compile({})(42) == 42

    def test_non_identity(self):
        assert not ScalarFn(("x",), Const(1)).is_identity()

    def test_canonical_alpha_equivalence(self):
        a = ScalarFn(("g",), Attr(Ref("g"), "key"))
        b = ScalarFn(("_g",), Attr(Ref("_g"), "key"))
        assert a != b
        assert a.canonical() == b.canonical()

    def test_canonical_distinguishes_different_bodies(self):
        a = ScalarFn(("g",), Attr(Ref("g"), "key"))
        b = ScalarFn(("g",), Attr(Ref("g"), "other"))
        assert a.canonical() != b.canonical()

    def test_describe(self):
        fn = ScalarFn(("x",), Ref("x"))
        assert "x" in fn.describe()


class TestCombinatorStructure:
    def test_inputs_and_traversal(self):
        plan = CMap(
            fn=ScalarFn.identity(),
            input=CFilter(
                predicate=ScalarFn.identity(),
                input=CBagRef(name="xs"),
            ),
        )
        kinds = [type(n).__name__ for n in combinator_nodes(plan)]
        assert kinds == ["CMap", "CFilter", "CBagRef"]

    def test_node_ids_unique(self):
        a, b = CBagRef(name="a"), CBagRef(name="b")
        assert a.node_id != b.node_id

    def test_with_cache_preserves_node_id(self):
        node = CBagRef(name="xs")
        cached = node.with_cache()
        assert cached.cache and not node.cache
        assert cached.node_id == node.node_id

    def test_with_partition_hint(self):
        node = CBagRef(name="xs").with_partition_hint(
            ScalarFn.identity()
        )
        assert node.partition_hint is not None

    def test_explain_renders_tree_with_flags(self):
        plan = CMap(
            fn=ScalarFn.identity(),
            input=CBagRef(name="xs").with_cache(),
        )
        text = explain(plan)
        assert "Map" in text
        assert "BagRef(xs)" in text
        assert "cached" in text


class TestAggResult:
    def test_positional_access(self):
        r = AggResult(key="k", aggs=(1, 2))
        assert r.key == "k"
        assert r.aggs[1] == 2

    def test_tuple_unpacking(self):
        key, a1, a2 = AggResult(key="k", aggs=(1, 2))
        assert (key, a1, a2) == ("k", 1, 2)

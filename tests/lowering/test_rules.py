"""Tests for the comprehension -> combinator rewrite (Figures 2/3a)."""

from dataclasses import dataclass

import pytest

from repro.comprehension.exprs import (
    AggByCall,
    AlgebraSpec,
    Attr,
    BagLiteral,
    BinOp,
    Compare,
    Const,
    DistinctCall,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    Lambda,
    MapCall,
    MinusCall,
    PlusCall,
    ReadCall,
    Ref,
    TupleExpr,
    evaluate,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    GenMode,
    Generator,
    Guard,
)
from repro.comprehension.normalize import normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag
from repro.errors import LoweringError
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CFlatMap,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CParallelize,
    CSemiJoin,
    CSource,
    CUnion,
    combinator_nodes,
)
from repro.lowering.rules import lower, lower_source


@dataclass(frozen=True)
class R:
    k: int
    v: int


def _lower(expr):
    return lower(normalize(resugar(expr)))


def _node_kinds(plan):
    return [type(n).__name__ for n in combinator_nodes(plan)]


class TestSources:
    def test_ref(self):
        assert isinstance(lower_source(Ref("xs"), None), CBagRef)

    def test_read(self):
        plan = lower_source(
            ReadCall(path=Const("p"), fmt=Const(None)), None
        )
        assert isinstance(plan, CSource)

    def test_bag_literal(self):
        assert isinstance(
            lower_source(BagLiteral(Ref("seq")), None), CParallelize
        )

    def test_group_by(self):
        plan = lower_source(
            GroupByCall(Ref("xs"), Lambda(("x",), Ref("x"))), None
        )
        assert isinstance(plan, CGroupBy)

    def test_agg_by(self):
        plan = lower_source(
            AggByCall(
                source=Ref("xs"),
                key=Lambda(("x",), Ref("x")),
                specs=(AlgebraSpec("count"),),
            ),
            None,
        )
        assert isinstance(plan, CAggBy)

    def test_plus_minus_distinct(self):
        assert isinstance(
            lower_source(PlusCall(Ref("a"), Ref("b")), None), CUnion
        )
        assert isinstance(
            lower_source(MinusCall(Ref("a"), Ref("b")), None), CMinus
        )
        assert isinstance(
            lower_source(DistinctCall(Ref("a")), None), CDistinct
        )

    def test_unloweable_source_raises(self):
        with pytest.raises(LoweringError):
            lower_source(Const(5), None)


class TestStateMachine:
    def test_map_rule(self):
        plan = _lower(
            MapCall(Ref("xs"), Lambda(("x",), BinOp("+", Ref("x"), Const(1))))
        )
        assert _node_kinds(plan) == ["CMap", "CBagRef"]

    def test_identity_map_elided(self):
        plan = _lower(MapCall(Ref("xs"), Lambda(("x",), Ref("x"))))
        assert _node_kinds(plan) == ["CBagRef"]

    def test_filter_pushdown(self):
        plan = _lower(
            FilterCall(
                Ref("xs"),
                Lambda(("x",), Compare(">", Ref("x"), Const(0))),
            )
        )
        assert _node_kinds(plan) == ["CFilter", "CBagRef"]

    def test_equi_join_from_two_generators(self):
        comp = Comprehension(
            head=TupleExpr((Ref("x"), Ref("y"))),
            qualifiers=(
                Generator("x", Ref("xs")),
                Generator("y", Ref("ys")),
                Guard(
                    Compare(
                        "==",
                        Attr(Ref("x"), "k"),
                        Attr(Ref("y"), "k"),
                    )
                ),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        kinds = _node_kinds(plan)
        assert "CEqJoin" in kinds
        assert "CCross" not in kinds

    def test_filter_pushed_below_join(self):
        comp = Comprehension(
            head=Ref("x"),
            qualifiers=(
                Generator("x", Ref("xs")),
                Generator("y", Ref("ys")),
                Guard(Compare(">", Attr(Ref("x"), "v"), Const(0))),
                Guard(
                    Compare(
                        "==",
                        Attr(Ref("x"), "k"),
                        Attr(Ref("y"), "k"),
                    )
                ),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        join = next(
            n for n in combinator_nodes(plan) if isinstance(n, CEqJoin)
        )
        # The single-generator filter sits below the join's left input.
        assert isinstance(join.left, CFilter)

    def test_cross_when_no_equi_predicate(self):
        comp = Comprehension(
            head=TupleExpr((Ref("x"), Ref("y"))),
            qualifiers=(
                Generator("x", Ref("xs")),
                Generator("y", Ref("ys")),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        assert "CCross" in _node_kinds(plan)

    def test_non_equi_predicate_becomes_residual_filter_on_cross(self):
        comp = Comprehension(
            head=Ref("x"),
            qualifiers=(
                Generator("x", Ref("xs")),
                Generator("y", Ref("ys")),
                Guard(Compare("<", Ref("x"), Ref("y"))),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        kinds = _node_kinds(plan)
        assert kinds[0] in ("CMap", "CFilter")
        assert "CCross" in kinds
        assert "CFilter" in kinds

    def test_three_way_join(self):
        comp = Comprehension(
            head=TupleExpr((Ref("a"), Ref("b"), Ref("c"))),
            qualifiers=(
                Generator("a", Ref("as_")),
                Generator("b", Ref("bs")),
                Generator("c", Ref("cs")),
                Guard(Compare("==", Ref("a"), Ref("b"))),
                Guard(Compare("==", Ref("b"), Ref("c"))),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        joins = [
            n for n in combinator_nodes(plan) if isinstance(n, CEqJoin)
        ]
        assert len(joins) == 2

    def test_fold_kind_wraps_in_cfold(self):
        plan = _lower(FoldCall(Ref("xs"), AlgebraSpec("sum")))
        assert isinstance(plan, CFold)

    def test_flat_map_head(self):
        plan = _lower(
            FlatMapCall(
                Ref("xs"), Lambda(("x",), Attr(Ref("x"), "items"))
            )
        )
        kinds = _node_kinds(plan)
        assert "CFlatMap" in kinds

    def test_exists_generator_becomes_semi_join(self):
        comp = Comprehension(
            head=Ref("e"),
            qualifiers=(
                Generator("e", Ref("emails")),
                Generator("b", Ref("bl"), GenMode.EXISTS),
                Guard(
                    Compare(
                        "==",
                        Attr(Ref("b"), "ip"),
                        Attr(Ref("e"), "ip"),
                    )
                ),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        semi = next(
            n
            for n in combinator_nodes(plan)
            if isinstance(n, CSemiJoin)
        )
        assert not semi.anti

    def test_not_exists_generator_becomes_anti_join(self):
        comp = Comprehension(
            head=Ref("e"),
            qualifiers=(
                Generator("e", Ref("emails")),
                Generator("b", Ref("bl"), GenMode.NOT_EXISTS),
                Guard(Compare("==", Ref("b"), Ref("e"))),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        semi = next(
            n
            for n in combinator_nodes(plan)
            if isinstance(n, CSemiJoin)
        )
        assert semi.anti

    def test_exists_without_equi_guard_raises(self):
        comp = Comprehension(
            head=Ref("e"),
            qualifiers=(
                Generator("e", Ref("emails")),
                Generator("b", Ref("bl"), GenMode.EXISTS),
                Guard(Compare("<", Ref("b"), Ref("e"))),
            ),
            kind=BAG,
        )
        with pytest.raises(LoweringError, match="equi-join"):
            lower(comp)

    def test_dependent_generator_becomes_flat_map(self):
        comp = Comprehension(
            head=Ref("n"),
            qualifiers=(
                Generator("v", Ref("vs")),
                Generator("n", Attr(Ref("v"), "neighbors")),
            ),
            kind=BAG,
        )
        plan = _lower(comp)
        assert "CFlatMap" in _node_kinds(plan)

    def test_comprehension_without_generators_raises(self):
        comp = Comprehension(head=Const(1), qualifiers=(), kind=BAG)
        with pytest.raises(LoweringError, match="no normal generators"):
            lower(comp)


class TestLoweredSemantics:
    """Lowered plans executed on an engine must match direct evaluation."""

    def _run(self, expr, env):
        from repro.engines.sparklike import SparkLikeEngine

        plan = _lower(expr)
        engine = SparkLikeEngine()
        if isinstance(plan, CFold):
            return engine.run_scalar(plan, env)
        return DataBag(engine.collect(engine.defer(plan, env)))

    def test_join_semantics(self):
        comp = Comprehension(
            head=TupleExpr((Attr(Ref("x"), "v"), Attr(Ref("y"), "v"))),
            qualifiers=(
                Generator("x", Ref("xs")),
                Generator("y", Ref("ys")),
                Guard(
                    Compare(
                        "==",
                        Attr(Ref("x"), "k"),
                        Attr(Ref("y"), "k"),
                    )
                ),
            ),
            kind=BAG,
        )
        env = {
            "xs": DataBag([R(1, 10), R(2, 20), R(1, 11)]),
            "ys": DataBag([R(1, 100), R(3, 300)]),
        }
        assert self._run(comp, env) == evaluate(comp, env)

    def test_cross_semantics(self):
        comp = Comprehension(
            head=TupleExpr((Ref("x"), Ref("y"))),
            qualifiers=(
                Generator("x", Ref("xs")),
                Generator("y", Ref("ys")),
            ),
            kind=BAG,
        )
        env = {"xs": DataBag([1, 2]), "ys": DataBag(["a"])}
        assert self._run(comp, env) == evaluate(comp, env)

    def test_fold_semantics(self):
        expr = FoldCall(
            FilterCall(
                Ref("xs"),
                Lambda(("x",), Compare(">", Ref("x"), Const(2))),
            ),
            AlgebraSpec("sum"),
        )
        env = {"xs": DataBag([1, 2, 3, 4])}
        assert self._run(expr, env) == evaluate(expr, env) == 7

    def test_dependent_generator_semantics(self):
        comp = Comprehension(
            head=Ref("n"),
            qualifiers=(
                Generator("v", Ref("vs")),
                Generator("n", Attr(Ref("v"), "neighbors")),
            ),
            kind=BAG,
        )

        @dataclass(frozen=True)
        class V:
            neighbors: tuple

        env = {"vs": DataBag([V((1, 2)), V((3,))])}
        assert self._run(comp, env) == DataBag([1, 2, 3])

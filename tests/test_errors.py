"""Tests for the exception taxonomy and the simulated failure paths.

Every library error derives from :class:`EmmaError`; engine failures
carry their execution context (failing job/task/partition/worker plus a
metrics snapshot) so callers can see how far a failed run got.
"""

import pytest

from repro.comprehension.exprs import (
    BinOp,
    Const,
    GroupByCall,
    Lambda,
    MapCall,
    Ref,
)
from repro.comprehension.normalize import normalize
from repro.comprehension.resugar import resugar
from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig, stable_hash
from repro.engines.costmodel import CostModel
from repro.engines.metrics import Metrics
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import (
    ComprehensionError,
    EmmaError,
    EngineError,
    FoldConditionError,
    LiftError,
    LoweringError,
    PlanError,
    SimulatedMemoryError,
    SimulatedTimeout,
    TaskFailedError,
)
from repro.lowering.rules import lower


class TestTaxonomy:
    def test_every_error_is_an_emma_error(self):
        for cls in (
            LiftError,
            ComprehensionError,
            LoweringError,
            PlanError,
            EngineError,
            TaskFailedError,
            SimulatedTimeout,
            SimulatedMemoryError,
            FoldConditionError,
        ):
            assert issubclass(cls, EmmaError)

    def test_engine_failures_share_a_catch_clause(self):
        for cls in (
            TaskFailedError,
            SimulatedTimeout,
            SimulatedMemoryError,
        ):
            assert issubclass(cls, EngineError)

    def test_failure_site_reports_known_coordinates_only(self):
        err = EngineError("boom", task=7, worker=2)
        assert err.failure_site() == {"task": 7, "worker": 2}
        assert EngineError("boom").failure_site() == {}

    def test_context_defaults_are_none(self):
        err = EngineError("boom")
        assert err.job is None and err.metrics is None


def _map_plan():
    expr = MapCall(
        Ref("xs"), Lambda(("x",), BinOp("*", Ref("x"), Const(2)))
    )
    return lower(normalize(resugar(expr)))


def _group_plan():
    expr = GroupByCall(
        Ref("xs"), Lambda(("x",), BinOp("%", Ref("x"), Const(3)))
    )
    return lower(normalize(resugar(expr)))


class TestSimulatedTimeout:
    def test_exceeding_the_budget_raises_with_context(self):
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4), time_budget=1e-12
        )
        env = {"xs": DataBag(list(range(50)))}
        with pytest.raises(SimulatedTimeout) as info:
            engine.collect(engine.defer(_map_plan(), env))
        err = info.value
        assert err.simulated_seconds > err.budget_seconds
        assert isinstance(err.metrics, Metrics)
        assert err.metrics.simulated_seconds == pytest.approx(
            err.simulated_seconds
        )

    def test_within_budget_passes(self):
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4), time_budget=1e6
        )
        env = {"xs": DataBag(list(range(50)))}
        result = engine.collect(engine.defer(_map_plan(), env))
        assert sorted(result) == [2 * x for x in range(50)]


class TestSimulatedMemoryError:
    def test_group_materialization_over_limit_raises(self):
        # The Spark-like engine materializes groups in bounded worker
        # memory (the paper's missing-fold-group-fusion failure mode).
        engine = SparkLikeEngine(
            cluster=ClusterConfig(num_workers=4),
            cost=CostModel(memory_per_worker=8),
            memory_budget=0,  # no spill tier: the raise must survive
        )
        env = {"xs": DataBag(list(range(200)))}
        with pytest.raises(SimulatedMemoryError) as info:
            engine.collect(engine.defer(_group_plan(), env))
        err = info.value
        assert err.used_bytes > err.limit_bytes == 8
        site = err.failure_site()
        assert "worker" in site and "partition" in site
        assert isinstance(err.metrics, Metrics)


class TestStableHash:
    def test_closed_set_is_deterministic(self):
        values = [
            True,
            42,
            -7,
            "key",
            b"key",
            3.25,
            (1, "a"),
            [1, 2, 3],
            {1, 2},
            frozenset({3}),
            None,
        ]
        for v in values:
            assert stable_hash(v) == stable_hash(v)

    def test_dataclasses_hash_field_wise(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class P:
            x: int
            tags: list

        assert stable_hash(P(1, ["a"])) == stable_hash(P(1, ["a"]))
        assert stable_hash(P(1, ["a"])) != stable_hash(P(2, ["a"]))

    def test_equal_fields_different_types_hash_apart(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class A:
            x: int

        @dataclass(frozen=True)
        class B:
            x: int

        assert stable_hash(A(5)) != stable_hash(B(5))

    def test_arbitrary_objects_are_rejected(self):
        class Opaque:
            pass

        with pytest.raises(EngineError, match="stable partition hash"):
            stable_hash(Opaque())
